package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"loaddynamics/internal/core"
	"loaddynamics/internal/nn"
)

// testModel trains a small model once per test binary.
func testModel(t *testing.T) (*core.Model, []float64) {
	t.Helper()
	rng := rand.New(rand.NewSource(1))
	series := make([]float64, 260)
	for i := range series {
		series[i] = 1000 + 400*math.Sin(2*math.Pi*float64(i)/24) + 5*rng.NormFloat64()
	}
	tc := nn.DefaultTrainConfig()
	tc.Epochs = 15
	tc.Patience = 3
	m, err := core.TrainSingle(core.Config{Seed: 1, Train: tc},
		series[:200], series[200:], core.Hyperparams{HistoryLen: 12, CellSize: 6, Layers: 1, BatchSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	return m, series
}

func newTestServerOpts(t *testing.T, opts Options) (*httptest.Server, *Server, *core.Model, []float64) {
	t.Helper()
	m, series := testModel(t)
	if opts.Logger == nil {
		// Keep per-request access logs out of test output.
		opts.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s, err := New(m, opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s, m, series
}

func newTestServer(t *testing.T) (*httptest.Server, *core.Model, []float64) {
	t.Helper()
	ts, _, m, series := newTestServerOpts(t, Options{})
	return ts, m, series
}

func TestNewRejectsNilModel(t *testing.T) {
	if _, err := New(nil, Options{}); err == nil {
		t.Fatal("expected error for nil model")
	}
}

func TestHealthz(t *testing.T) {
	ts, _, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var body map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body["status"] != "ok" {
		t.Fatalf("body = %v", body)
	}
	// Wrong method.
	resp2, err := http.Post(ts.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz status %d", resp2.StatusCode)
	}
}

func TestModelEndpoint(t *testing.T) {
	ts, m, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var info ModelInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Hyperparams.HistoryLen != m.HP.HistoryLen || info.NumWeights != m.NumParams() {
		t.Fatalf("info = %+v", info)
	}
}

func postForecast(t *testing.T, url string, req ForecastRequest) (*http.Response, ForecastResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/forecast", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out ForecastResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

func TestForecastMatchesModel(t *testing.T) {
	ts, m, series := newTestServer(t)
	resp, out := postForecast(t, ts.URL, ForecastRequest{History: series, Steps: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if out.Degraded {
		t.Fatal("healthy model reported degraded")
	}
	want, err := m.PredictSteps(series, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Forecasts) != 3 {
		t.Fatalf("got %d forecasts", len(out.Forecasts))
	}
	for i := range want {
		if math.Abs(out.Forecasts[i]-want[i]) > 1e-9 {
			t.Fatalf("forecast %d: %v vs %v", i, out.Forecasts[i], want[i])
		}
	}
}

func TestForecastDefaultsToOneStep(t *testing.T) {
	ts, _, series := newTestServer(t)
	resp, out := postForecast(t, ts.URL, ForecastRequest{History: series})
	if resp.StatusCode != http.StatusOK || len(out.Forecasts) != 1 {
		t.Fatalf("status %d forecasts %d", resp.StatusCode, len(out.Forecasts))
	}
}

func TestForecastValidation(t *testing.T) {
	ts, _, series := newTestServer(t)
	neg := append([]float64(nil), series...)
	neg[40] = -17
	cases := []struct {
		name string
		req  ForecastRequest
		want int
	}{
		{"empty history", ForecastRequest{Steps: 1}, http.StatusBadRequest},
		{"short history", ForecastRequest{History: series[:3]}, http.StatusBadRequest},
		{"negative steps", ForecastRequest{History: series, Steps: -1}, http.StatusBadRequest},
		{"too many steps", ForecastRequest{History: series, Steps: MaxSteps + 1}, http.StatusBadRequest},
		{"negative history value", ForecastRequest{History: neg}, http.StatusBadRequest},
	}
	for _, c := range cases {
		resp, _ := postForecast(t, ts.URL, c.req)
		if resp.StatusCode != c.want {
			t.Fatalf("%s: status %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
	// Raw bodies the typed round-trip cannot produce: garbage JSON and
	// non-finite history literals (JSON cannot represent NaN/Inf, so these
	// must die in decoding with a 400, never reach the model).
	for _, raw := range []string{"{", `{"history":[1,2,NaN],"steps":1}`, `{"history":[1,2,1e999],"steps":1}`} {
		resp, err := http.Post(ts.URL+"/v1/forecast", "application/json", strings.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("raw body %q: status %d, want 400", raw, resp.StatusCode)
		}
	}
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/forecast")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/forecast: status %d", resp.StatusCode)
	}
}

func TestForecastDegradedFallbackOnNonFiniteOutput(t *testing.T) {
	ts, s, _, series := newTestServerOpts(t, Options{})
	s.predict = func(ctx context.Context, m *core.Model, history []float64, steps int) ([]float64, error) {
		out := make([]float64, steps)
		for i := range out {
			out[i] = math.NaN()
		}
		return out, nil
	}
	resp, out := postForecast(t, ts.URL, ForecastRequest{History: series, Steps: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded response status %d, want 200", resp.StatusCode)
	}
	if !out.Degraded || out.Fallback != "last-value" || out.Reason == "" {
		t.Fatalf("response = %+v, want degraded last-value fallback", out)
	}
	last := series[len(series)-1]
	if len(out.Forecasts) != 4 {
		t.Fatalf("got %d forecasts, want 4", len(out.Forecasts))
	}
	for i, v := range out.Forecasts {
		if v != last {
			t.Fatalf("fallback forecast %d = %v, want last value %v", i, v, last)
		}
	}
}

func TestForecastModelErrorIs502(t *testing.T) {
	ts, s, _, series := newTestServerOpts(t, Options{})
	s.predict = func(ctx context.Context, m *core.Model, history []float64, steps int) ([]float64, error) {
		return nil, fmt.Errorf("synthetic model failure")
	}
	resp, _ := postForecast(t, ts.URL, ForecastRequest{History: series, Steps: 1})
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("status %d, want 502", resp.StatusCode)
	}
}

func TestForecastTimeoutIs504(t *testing.T) {
	ts, s, _, series := newTestServerOpts(t, Options{RequestTimeout: 20 * time.Millisecond})
	s.predict = func(ctx context.Context, m *core.Model, history []float64, steps int) ([]float64, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	resp, _ := postForecast(t, ts.URL, ForecastRequest{History: series, Steps: 1})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", resp.StatusCode)
	}
}

func TestForecastSheddingAtCapacity(t *testing.T) {
	ts, s, _, series := newTestServerOpts(t, Options{MaxInFlight: 1})
	inside := make(chan struct{})
	release := make(chan struct{})
	var first sync.Once
	s.predict = func(ctx context.Context, m *core.Model, history []float64, steps int) ([]float64, error) {
		// Only the first request blocks holding the slot; later requests
		// (issued after release) return immediately.
		first.Do(func() {
			close(inside)
			<-release
		})
		return []float64{1}, nil
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		resp, _ := postForecast(t, ts.URL, ForecastRequest{History: series, Steps: 1})
		if resp.StatusCode != http.StatusOK {
			t.Errorf("occupant status %d", resp.StatusCode)
		}
	}()
	<-inside // the single slot is now held
	resp, _ := postForecast(t, ts.URL, ForecastRequest{History: series, Steps: 1})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("shed request status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
	close(release)
	wg.Wait()
	// Capacity is released: the next request succeeds.
	resp2, _ := postForecast(t, ts.URL, ForecastRequest{History: series, Steps: 1})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("post-shed status %d, want 200", resp2.StatusCode)
	}
}

func TestPanicRecoveryReturnsJSON500(t *testing.T) {
	ts, s, _, series := newTestServerOpts(t, Options{})
	s.predict = func(ctx context.Context, m *core.Model, history []float64, steps int) ([]float64, error) {
		panic("synthetic handler panic")
	}
	resp, _ := postForecast(t, ts.URL, ForecastRequest{History: series, Steps: 1})
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
}

// reloadFixture saves the primary model to disk and returns a server
// configured to reload from that path, plus a differently-shaped second
// model to swap in.
func reloadFixture(t *testing.T) (*httptest.Server, *Server, *core.Model, *core.Model, string, []float64) {
	t.Helper()
	m, series := testModel(t)
	tc := nn.DefaultTrainConfig()
	tc.Epochs = 10
	tc.Patience = 2
	m2, err := core.TrainSingle(core.Config{Seed: 2, Train: tc},
		series[:200], series[200:], core.Hyperparams{HistoryLen: 10, CellSize: 4, Layers: 1, BatchSize: 16})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	s, err := New(m, Options{ModelPath: path})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s, m, m2, path, series
}

func TestReloadSwapsModelAtomically(t *testing.T) {
	ts, _, _, m2, path, _ := reloadFixture(t)
	if err := m2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("reload status %d", resp.StatusCode)
	}
	infoResp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer infoResp.Body.Close()
	var info ModelInfo
	if err := json.NewDecoder(infoResp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Hyperparams.HistoryLen != m2.HP.HistoryLen {
		t.Fatalf("served model history len %d, want reloaded %d", info.Hyperparams.HistoryLen, m2.HP.HistoryLen)
	}
}

func TestReloadKeepsOldModelOnCorruptFile(t *testing.T) {
	ts, _, m, _, path, series := reloadFixture(t)
	if err := os.WriteFile(path, []byte(`{"version":1,"garbage":`), 0o644); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("reload of corrupt file: status %d, want 500", resp.StatusCode)
	}
	// The old model must keep serving.
	fResp, out := postForecast(t, ts.URL, ForecastRequest{History: series, Steps: 1})
	if fResp.StatusCode != http.StatusOK || len(out.Forecasts) != 1 {
		t.Fatalf("old model not serving after failed reload: status %d", fResp.StatusCode)
	}
	want, err := m.PredictSteps(series, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Forecasts[0]-want[0]) > 1e-9 {
		t.Fatalf("forecast %v, want old model's %v", out.Forecasts[0], want[0])
	}
}

func TestReloadMethodAndAvailability(t *testing.T) {
	ts, _, _ := newTestServer(t) // no ModelPath → reload unavailable
	resp, err := http.Post(ts.URL+"/v1/reload", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("reload without model path: status %d, want 409", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/v1/reload")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/reload: status %d, want 405", getResp.StatusCode)
	}
}

// TestConcurrentForecastAndReload hammers forecasts while hot-reloading the
// model — run under -race it proves the atomic swap never tears a request.
func TestConcurrentForecastAndReload(t *testing.T) {
	ts, s, _, m2, path, series := reloadFixture(t)
	if err := m2.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	const workers, perWorker = 4, 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				resp, out := postForecast(t, ts.URL, ForecastRequest{History: series, Steps: 2})
				if resp.StatusCode != http.StatusOK {
					t.Errorf("forecast status %d", resp.StatusCode)
					return
				}
				for _, v := range out.Forecasts {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Errorf("torn forecast: %v", out.Forecasts)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 16; i++ {
			if err := s.Reload(); err != nil {
				t.Errorf("reload: %v", err)
				return
			}
		}
	}()
	wg.Wait()
}

func TestRetryAfterScalesWithShedPressure(t *testing.T) {
	_, s, _, _ := newTestServerOpts(t, Options{MaxInFlight: 1, RetryAfterBase: 2 * time.Second, RetryAfterMax: 7 * time.Second})

	// Pure scaling: streak x base, clamped to [base, max], whole seconds.
	cases := []struct {
		streak int64
		want   string
	}{{1, "2"}, {2, "4"}, {3, "6"}, {4, "7"}, {100, "7"}}
	for _, c := range cases {
		if got := s.retryAfter(c.streak); got != c.want {
			t.Errorf("retryAfter(%d) = %s, want %s", c.streak, got, c.want)
		}
	}

	// End-to-end: hold the single slot, then shed repeatedly — the
	// advertised delay climbs with the consecutive-shed streak.
	s.inflight <- struct{}{}
	for i, want := range []string{"2", "4", "6", "7", "7"} {
		rec := httptest.NewRecorder()
		if s.acquireSlot(rec) {
			t.Fatalf("shed %d: acquired a slot with the server full", i)
		}
		if rec.Code != http.StatusServiceUnavailable {
			t.Fatalf("shed %d: status %d, want 503", i, rec.Code)
		}
		if got := rec.Header().Get("Retry-After"); got != want {
			t.Fatalf("shed %d: Retry-After %q, want %q", i, got, want)
		}
	}
	<-s.inflight

	// A successful acquisition resets the streak: the next shed is back
	// at the base hint.
	if !s.acquireSlot(httptest.NewRecorder()) {
		t.Fatal("acquireSlot failed with a free slot")
	}
	// The slot just acquired is still held, so the next request sheds —
	// but with the streak reset it re-advertises the base hint.
	rec := httptest.NewRecorder()
	if s.acquireSlot(rec) {
		t.Fatal("acquired a slot with the server full")
	}
	if got := rec.Header().Get("Retry-After"); got != "2" {
		t.Fatalf("post-reset Retry-After %q, want base \"2\"", got)
	}
}

func TestRetryAfterDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.RetryAfterBase != time.Second || o.RetryAfterMax != 30*time.Second {
		t.Fatalf("defaults = (%v, %v), want (1s, 30s)", o.RetryAfterBase, o.RetryAfterMax)
	}
	// An inverted pair is normalized so the clamp stays well-formed.
	o = Options{RetryAfterBase: 10 * time.Second, RetryAfterMax: 2 * time.Second}.withDefaults()
	if o.RetryAfterMax != 10*time.Second {
		t.Fatalf("normalized max = %v, want 10s", o.RetryAfterMax)
	}
	// Sub-second bases still advertise at least one whole second.
	s := &Server{opts: Options{RetryAfterBase: 100 * time.Millisecond, RetryAfterMax: time.Second}.withDefaults()}
	if got := s.retryAfter(1); got != "1" {
		t.Fatalf("sub-second hint = %q, want \"1\"", got)
	}
}
