package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"loaddynamics/internal/core"
	"loaddynamics/internal/fleet"
	"loaddynamics/internal/nn"
	"loaddynamics/internal/obs"
)

// fuzzServer builds one tiny-model server per process with an instant stub
// predictor, so the fuzzer spends its budget on the request decoder and
// validation chain, not on LSTM math.
var fuzzServer = sync.OnceValue(func() *Server {
	rng := rand.New(rand.NewSource(7))
	series := make([]float64, 80)
	for i := range series {
		series[i] = 100 + 30*math.Sin(2*math.Pi*float64(i)/12) + rng.NormFloat64()
	}
	tc := nn.DefaultTrainConfig()
	tc.Epochs = 2
	tc.Patience = 0
	m, err := core.TrainSingle(core.Config{Seed: 7, Train: tc},
		series[:60], series[60:], core.Hyperparams{HistoryLen: 4, CellSize: 2, Layers: 1, BatchSize: 8})
	if err != nil {
		panic(err)
	}
	s, err := New(m, Options{Metrics: obs.NewRegistry()})
	if err != nil {
		panic(err)
	}
	s.predict = func(ctx context.Context, m *core.Model, history []float64, steps int) ([]float64, error) {
		out := make([]float64, steps)
		for i := range out {
			out[i] = history[len(history)-1]
		}
		return out, nil
	}
	s.predictBatch = func(ctx context.Context, m *core.Model, histories [][]float64, steps []int) ([][]float64, error) {
		out := make([][]float64, len(histories))
		for i, h := range histories {
			out[i] = make([]float64, steps[i])
			for k := range out[i] {
				out[i][k] = h[len(h)-1]
			}
		}
		return out, nil
	}
	return s
})

// FuzzObserveHandler throws arbitrary request bodies at the fleet observe
// endpoint: the handler must never panic, must answer only 200 or 400 (the
// default workload exists, so 404 is unreachable), and must always produce
// valid JSON. A 200 must carry a well-formed evaluator status whose scored
// count never exceeds the accepted count.
func FuzzObserveHandler(f *testing.F) {
	f.Add([]byte(`{"values":[1,2,3]}`))
	f.Add([]byte(`{"values":[0]}`))
	f.Add([]byte(`{"values":[]}`))
	f.Add([]byte(`{"values":[-1]}`))
	f.Add([]byte(`{"values":[1e999]}`))
	f.Add([]byte(`{"values":[NaN]}`))
	f.Add([]byte(`{"values":"not an array"}`))
	f.Add([]byte(`{"values":[1],"extra":true}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))

	f.Fuzz(func(t *testing.T, body []byte) {
		s := fuzzServer()
		req := httptest.NewRequest(http.MethodPost, "/v1/workloads/default/observe", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest:
		default:
			t.Fatalf("body %q: status %d, want 200 or 400", body, rec.Code)
		}
		var decoded any
		if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
			t.Fatalf("body %q: non-JSON response %q: %v", body, rec.Body.Bytes(), err)
		}
		if rec.Code == http.StatusOK {
			var st fleet.Status
			if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
				t.Fatalf("body %q: 200 response did not decode: %v", body, err)
			}
			if st.Accepted <= 0 || st.Scored > st.Accepted {
				t.Fatalf("body %q: inconsistent status %+v", body, st)
			}
			if math.IsNaN(st.RollingMAPE) || math.IsNaN(st.RollingRMSE) {
				t.Fatalf("body %q: non-finite rolling errors %+v", body, st)
			}
		}
	})
}

// FuzzForecastHandler throws arbitrary request bodies at POST /v1/forecast:
// the handler must never panic, must answer only 200 or 400 (the stub
// predictor cannot time out, err or overload), and must always produce valid
// JSON — a malformed payload must never leak a non-JSON error page to the
// auto-scaler client.
func FuzzForecastHandler(f *testing.F) {
	f.Add([]byte(`{"history":[1,2,3,4,5],"steps":2}`))
	f.Add([]byte(`{"history":[1,2,3,4],"steps":0}`))
	f.Add([]byte(`{"history":[],"steps":1}`))
	f.Add([]byte(`{"history":[1,2,3,4],"steps":-1}`))
	f.Add([]byte(`{"history":[1,2,3,4],"steps":100000}`))
	f.Add([]byte(`{"history":[1,2,-3,4],"steps":1}`))
	f.Add([]byte(`{"history":[1,2,NaN,4],"steps":1}`))
	f.Add([]byte(`{"history":[1,2,1e999,4],"steps":1}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"history":"not an array"}`))
	// Batch-shaped bodies posted at the single endpoint must be rejected
	// cleanly, not misparsed.
	f.Add([]byte(`{"entries":[{"workload":"default","history":[1,2,3,4],"steps":1}]}`))
	f.Add([]byte(`{"entries":[]}`))

	f.Fuzz(func(t *testing.T, body []byte) {
		s := fuzzServer()
		req := httptest.NewRequest(http.MethodPost, "/v1/forecast", bytes.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest:
		default:
			t.Fatalf("body %q: status %d, want 200 or 400", body, rec.Code)
		}
		var decoded any
		if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
			t.Fatalf("body %q: non-JSON response %q: %v", body, rec.Body.Bytes(), err)
		}
		if rec.Code == http.StatusOK {
			var out ForecastResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("body %q: 200 response did not decode: %v", body, err)
			}
			if len(out.Forecasts) == 0 {
				t.Fatalf("body %q: 200 response with no forecasts", body)
			}
			if !allFinite(out.Forecasts) {
				t.Fatalf("body %q: non-finite forecasts %v", body, out.Forecasts)
			}
		}
	})
}

// FuzzForecastBatchHandler throws arbitrary bodies at POST /v1/forecast:batch:
// the handler must never panic, must answer only 200 or 400 (per-entry
// failures land in the entry's error field, not the status), must always
// produce valid JSON, and a 200 must carry exactly one result per request
// entry with finite forecasts on the successful ones.
func FuzzForecastBatchHandler(f *testing.F) {
	f.Add([]byte(`{"entries":[{"workload":"default","history":[1,2,3,4,5],"steps":2}]}`))
	f.Add([]byte(`{"entries":[{"workload":"default","history":[1,2,3,4],"steps":1},{"workload":"default","history":[5,6,7,8],"steps":3}]}`))
	f.Add([]byte(`{"entries":[{"workload":"nope","history":[1,2,3,4],"steps":1}]}`))
	f.Add([]byte(`{"entries":[{"workload":"bad id!","history":[1,2,3,4],"steps":1}]}`))
	f.Add([]byte(`{"entries":[{"workload":"default","history":[1,2],"steps":1}]}`))
	f.Add([]byte(`{"entries":[{"workload":"default","history":[],"steps":1}]}`))
	f.Add([]byte(`{"entries":[{"workload":"default","history":[1,2,NaN,4],"steps":1}]}`))
	f.Add([]byte(`{"entries":[{"workload":"default","history":[1,2,3,4],"steps":-1}]}`))
	f.Add([]byte(`{"entries":[{"workload":"default","history":[-1,2,3,4],"steps":1}]}`))
	f.Add([]byte(`{"entries":[]}`))
	f.Add([]byte(`{"entries":null}`))
	f.Add([]byte(`{"entries":"not an array"}`))
	f.Add([]byte(`{"history":[1,2,3,4],"steps":1}`)) // single-shaped body at the batch endpoint
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`null`))

	f.Fuzz(func(t *testing.T, body []byte) {
		s := fuzzServer()
		var req BatchForecastRequest
		wantResults := -1
		if err := json.Unmarshal(body, &req); err == nil {
			wantResults = len(req.Entries)
		}
		hreq := httptest.NewRequest(http.MethodPost, "/v1/forecast:batch", bytes.NewReader(body))
		hreq.Header.Set("Content-Type", "application/json")
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, hreq)
		switch rec.Code {
		case http.StatusOK, http.StatusBadRequest:
		default:
			t.Fatalf("body %q: status %d, want 200 or 400", body, rec.Code)
		}
		var decoded any
		if err := json.Unmarshal(rec.Body.Bytes(), &decoded); err != nil {
			t.Fatalf("body %q: non-JSON response %q: %v", body, rec.Body.Bytes(), err)
		}
		if rec.Code == http.StatusOK {
			var out BatchForecastResponse
			if err := json.Unmarshal(rec.Body.Bytes(), &out); err != nil {
				t.Fatalf("body %q: 200 response did not decode: %v", body, err)
			}
			if wantResults >= 0 && len(out.Results) != wantResults {
				t.Fatalf("body %q: %d results for %d entries", body, len(out.Results), wantResults)
			}
			for i, r := range out.Results {
				if r.Error != "" {
					if len(r.Forecasts) != 0 {
						t.Fatalf("body %q: result %d has both error and forecasts: %+v", body, i, r)
					}
					continue
				}
				if len(r.Forecasts) == 0 {
					t.Fatalf("body %q: result %d has neither error nor forecasts", body, i)
				}
				if !allFinite(r.Forecasts) {
					t.Fatalf("body %q: result %d non-finite forecasts %v", body, i, r.Forecasts)
				}
			}
		}
	})
}
