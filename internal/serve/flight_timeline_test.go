package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"loaddynamics/internal/core"
	"loaddynamics/internal/fleet"
	"loaddynamics/internal/nn"
	"loaddynamics/internal/obs"
)

// postJSONWithRequestID is postJSON with a caller-supplied correlation
// ID — the one the flight recorder must stamp on every event the
// request's observations cause.
func postJSONWithRequestID(t *testing.T, url, body, reqID string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Request-ID", reqID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

// TestFlightTimelineCausalChainE2E is this PR's acceptance test: one
// workload is driven through the public API from observation to
// promotion, and the flight timeline read back from
// GET /v1/workloads/{id}/timeline must be a single connected causal
// chain — the promotion resolves, parent by parent, to the exact
// observation batch that tripped drift, under one trace ID minted for
// that HTTP request, with warm-start provenance attached to the
// promotion event.
func TestFlightTimelineCausalChainE2E(t *testing.T) {
	tc := nn.DefaultTrainConfig()
	tc.Epochs = 2
	tc.Patience = 0
	fopts := fleet.Options{
		Window:            8,
		MinSamples:        4,
		DriftThreshold:    50,
		HistoryCap:        256,
		MinRebuildHistory: 32,
		RebuildQueue:      8,
		RebuildBudget:     time.Minute,
		Flight:            obs.NewFlightRecorder(obs.FlightRecorderOptions{Cap: 256}),
		Build: core.Config{
			Space:      core.ScaledSpace(4, 2, 1, 8),
			MaxIters:   2,
			InitPoints: 2,
			Seed:       7,
			Train:      tc,
			Scaler:     "minmax",
			Parallel:   1,
		},
	}
	ts, s, fl := newFleetServer(t, fopts, Options{})
	// Force a deterministic promotion: the incumbent cannot win.
	shifted, _ := fl.Model("gl-30m")
	shifted.ValError = 1e9
	if err := fl.Promote("gl-30m", shifted); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fl.Start(ctx)
	defer fl.Close()

	// Seed rebuild history, then score wildly-off served forecasts. The
	// final observe — the one that trips drift — carries a caller
	// correlation ID so the whole chain can be pinned to it.
	seed, _ := json.Marshal(map[string][]float64{"values": fleetSeries(5, 64)})
	if resp := postJSON(t, ts.URL+"/v1/workloads/gl-30m/observe", string(seed)); resp.StatusCode != http.StatusOK {
		t.Fatalf("seeding observe status %d", resp.StatusCode)
	}
	fbody, _ := json.Marshal(ForecastRequest{History: fleetSeries(9, 24), Steps: 2})
	if resp := postJSON(t, ts.URL+"/v1/workloads/gl-30m/forecast", string(fbody)); resp.StatusCode != http.StatusOK {
		t.Fatalf("first forecast status %d", resp.StatusCode)
	}
	obsResp := postJSONWithRequestID(t, ts.URL+"/v1/workloads/gl-30m/observe", `{"values":[1000,1000]}`, "itest-shift-1")
	if st := decodeBody[fleet.Status](t, obsResp); st.Scored != 2 {
		t.Fatalf("first shifted observe %+v", st)
	}
	if resp := postJSON(t, ts.URL+"/v1/workloads/gl-30m/forecast", string(fbody)); resp.StatusCode != http.StatusOK {
		t.Fatal("second forecast failed")
	}
	obsResp = postJSONWithRequestID(t, ts.URL+"/v1/workloads/gl-30m/observe", `{"values":[1000,1000]}`, "itest-shift-2")
	st := decodeBody[fleet.Status](t, obsResp)
	if !st.Drift || !st.RebuildQueued {
		t.Fatalf("shifted workload status %+v, want drift + queued rebuild", st)
	}

	admin := httptest.NewServer(s.Admin(false))
	defer admin.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(admin.URL + "/debug/metrics")
		if err != nil {
			t.Fatal(err)
		}
		c := decodeBody[obs.Snapshot](t, resp).Counters
		resp.Body.Close()
		if c["fleet.rebuilds.ok"] >= 1 && c["fleet.promotions"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebuild did not complete; counters %v", c)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Read the timeline through the public API.
	resp, err := http.Get(ts.URL + "/v1/workloads/gl-30m/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline status %d", resp.StatusCode)
	}
	tl := decodeBody[TimelineResponse](t, resp)
	if !tl.Enabled || tl.Workload != "gl-30m" || len(tl.Events) == 0 {
		t.Fatalf("timeline = enabled=%v workload=%q events=%d", tl.Enabled, tl.Workload, len(tl.Events))
	}

	// Connectivity: every event's parent resolves to another event in the
	// timeline, within the same trace.
	index := map[obs.HexID]obs.FlightEvent{}
	for _, ev := range tl.Events {
		if ev.ID == 0 {
			t.Fatalf("event without ID: %+v", ev)
		}
		index[ev.ID] = ev
	}
	for _, ev := range tl.Events {
		if ev.Parent == 0 {
			continue
		}
		parent, ok := index[ev.Parent]
		if !ok {
			t.Fatalf("event %s (%s) has unresolvable parent %s", ev.ID, ev.Kind, ev.Parent)
		}
		if parent.Trace != ev.Trace {
			t.Fatalf("event %s (%s) trace %s differs from parent %s trace %s",
				ev.ID, ev.Kind, ev.Trace, parent.ID, parent.Trace)
		}
	}

	// The promotion must walk back to the exact batch that tripped drift:
	// promoted → started → drift.detected → observe.batch, one trace.
	var promoted *obs.FlightEvent
	for i := range tl.Events {
		if tl.Events[i].Kind == obs.FlightRebuildPromoted {
			promoted = &tl.Events[i]
		}
	}
	if promoted == nil {
		t.Fatalf("no rebuild.promoted event in timeline: %+v", tl.Events)
	}
	if promoted.Outcome != obs.OutcomeOK || promoted.Trace == 0 {
		t.Fatalf("promoted event = %+v", promoted)
	}
	for _, attr := range []string{"warmstart_priors", "warmstart_neighbors", "val_error", "rounds_to_best"} {
		if _, ok := promoted.Attrs[attr]; !ok {
			t.Errorf("promoted event missing %s provenance: %v", attr, promoted.Attrs)
		}
	}
	wantChain := []string{obs.FlightRebuildStarted, obs.FlightDriftDetected, obs.FlightObserveBatch}
	ev := *promoted
	for _, wantKind := range wantChain {
		parent, ok := index[ev.Parent]
		if !ok {
			t.Fatalf("chain broken at %s: parent %s unresolvable", ev.Kind, ev.Parent)
		}
		if parent.Kind != wantKind {
			t.Fatalf("chain at %s: parent kind %s, want %s", ev.Kind, parent.Kind, wantKind)
		}
		if parent.Trace != promoted.Trace {
			t.Fatalf("chain at %s: trace %s, want the promotion's %s", parent.Kind, parent.Trace, promoted.Trace)
		}
		ev = parent
	}
	// The chain's root is the drift-tripping batch: the one the caller
	// tagged itest-shift-2.
	if ev.Parent != 0 {
		t.Fatalf("root observe.batch has parent %s, want none", ev.Parent)
	}
	if ev.RequestID != "itest-shift-2" {
		t.Fatalf("root batch request_id = %q, want itest-shift-2 (the drift-tripping request)", ev.RequestID)
	}
	// The rebuild.enqueued sibling rides the same trace.
	var enqueued bool
	for _, e := range tl.Events {
		if e.Kind == obs.FlightRebuildEnqueued && e.Trace == promoted.Trace {
			enqueued = true
		}
	}
	if !enqueued {
		t.Fatal("no rebuild.enqueued event under the promotion's trace")
	}

	// /debug/flight serves recorder stats and per-workload timelines.
	resp, err = http.Get(admin.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	stats := decodeBody[obs.FlightStats](t, resp)
	if !stats.Enabled || stats.Recorded == 0 || stats.Workloads["gl-30m"] == 0 {
		t.Fatalf("/debug/flight stats = %+v", stats)
	}
	resp, err = http.Get(admin.URL + "/debug/flight?workload=gl-30m")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if debugTL := decodeBody[TimelineResponse](t, resp); len(debugTL.Events) != len(tl.Events) {
		t.Fatalf("/debug/flight?workload returned %d events, timeline %d", len(debugTL.Events), len(tl.Events))
	}

	// The latency histograms retained exemplars: the OpenMetrics
	// exposition links scrape-time metrics back to flight traces.
	req, _ := http.NewRequest(http.MethodGet, admin.URL+"/debug/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentTypeOpenMetrics {
		t.Fatalf("negotiated Content-Type = %q, want OpenMetrics", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.HasSuffix(string(body), "# EOF\n") {
		t.Fatal("OpenMetrics exposition does not end with # EOF")
	}
	if !strings.Contains(string(body), `trace_id="`) {
		t.Fatal("OpenMetrics exposition carries no exemplars despite flight tracing")
	}
}

// TestTimelineEndpointValidation covers the timeline route's error
// surface and its disabled-recorder behavior.
func TestTimelineEndpointValidation(t *testing.T) {
	ts, _, _ := newFleetServer(t, fleet.Options{}, Options{})

	// No recorder configured: the endpoint reports disabled, not an error.
	resp, err := http.Get(ts.URL + "/v1/workloads/gl-30m/timeline")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timeline status %d", resp.StatusCode)
	}
	tl := decodeBody[TimelineResponse](t, resp)
	if tl.Enabled || len(tl.Events) != 0 {
		t.Fatalf("disabled timeline = %+v, want enabled=false with no events", tl)
	}

	if resp, err := http.Get(ts.URL + "/v1/workloads/nope/timeline"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload timeline status %d, want 404", resp.StatusCode)
	}
	if resp, err := http.Get(ts.URL + "/v1/workloads/.bad/timeline"); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid workload timeline status %d, want 400", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/workloads/gl-30m/timeline", `{}`); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST timeline status %d, want 405", resp.StatusCode)
	}
}

// TestMetricsContentNegotiation pins the admin exposition matrix:
// Accept-driven OpenMetrics upgrade, ?format=prometheus as a hard
// override, and the JSON snapshot default on /debug/metrics.
func TestMetricsContentNegotiation(t *testing.T) {
	_, s, _ := newFleetServer(t, fleet.Options{}, Options{})
	admin := httptest.NewServer(s.Admin(false))
	defer admin.Close()

	get := func(path, accept string) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, admin.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	for _, tc := range []struct {
		path, accept, wantCT string
	}{
		{"/debug/metrics", "", "application/json"},
		{"/debug/metrics", "application/openmetrics-text", obs.ContentTypeOpenMetrics},
		{"/debug/metrics?format=openmetrics", "", obs.ContentTypeOpenMetrics},
		{"/debug/metrics?format=prometheus", "application/openmetrics-text", obs.ContentTypePrometheus},
		{"/metrics", "", obs.ContentTypePrometheus},
		{"/metrics", "application/openmetrics-text; version=1.0.0", obs.ContentTypeOpenMetrics},
		{"/metrics?format=prometheus", "application/openmetrics-text", obs.ContentTypePrometheus},
	} {
		resp := get(tc.path, tc.accept)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s status %d", tc.path, resp.StatusCode)
		}
		ct := resp.Header.Get("Content-Type")
		if !strings.HasPrefix(ct, tc.wantCT) {
			t.Errorf("GET %s (Accept %q): Content-Type %q, want %q", tc.path, tc.accept, ct, tc.wantCT)
		}
		body, _ := io.ReadAll(resp.Body)
		if tc.wantCT == obs.ContentTypeOpenMetrics && !strings.HasSuffix(string(body), "# EOF\n") {
			t.Errorf("GET %s: OpenMetrics body does not end with # EOF", tc.path)
		}
		if tc.wantCT == obs.ContentTypePrometheus && strings.Contains(string(body), "# EOF") {
			t.Errorf("GET %s: 0.0.4 exposition must not carry # EOF", tc.path)
		}
	}
}
