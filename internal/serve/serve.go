// Package serve exposes a trained LoadDynamics model as an HTTP forecast
// service — the integration point an auto-scaler polls each interval. The
// handlers are stdlib net/http only, hardened for production: panics are
// recovered to JSON 500s, forecasts run under a per-request timeout, an
// in-flight limiter sheds excess load with 503s, corrupt model output is
// replaced by a degraded last-value fallback instead of poisoning the
// auto-scaler, and the model can be hot-reloaded atomically.
//
// Endpoints:
//
//	GET  /healthz      liveness probe
//	GET  /v1/model     model metadata (hyperparameters, validation error)
//	POST /v1/forecast  {"history": [...], "steps": n} → {"forecasts": [...]}
//	POST /v1/reload    atomically reload the model from disk
//
// Every request is metered (per-route counters and latency histograms,
// per-status-code counters, an in-flight gauge, degraded-fallback and
// reload counters); Admin returns the operator-only mux exposing the
// snapshot at GET /debug/metrics plus opt-in net/http/pprof.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync/atomic"
	"time"

	"loaddynamics/internal/core"
	"loaddynamics/internal/obs"
)

// MaxHistoryLen bounds request payloads (DoS hygiene).
const MaxHistoryLen = 100_000

// MaxSteps bounds the iterated forecast horizon per request.
const MaxSteps = 1000

// Options tune the server's protective limits. The zero value gets
// production defaults.
type Options struct {
	// ModelPath is the file /v1/reload (and SIGHUP in cmd/loadserve)
	// re-reads the model from. Empty disables reloading.
	ModelPath string
	// RequestTimeout bounds each forecast computation (default 10s). The
	// model honors it between forecast steps, so a 1000-step request on a
	// slow model cannot wedge a connection forever.
	RequestTimeout time.Duration
	// MaxInFlight is the number of concurrent forecast requests served
	// before the rest are shed with 503s (default 64). Shedding keeps tail
	// latency bounded when an auto-scaler fleet stampedes.
	MaxInFlight int
	// Metrics is the registry request metrics are reported to (default:
	// obs.Default, so one /debug/metrics snapshot covers both the serving
	// layer and any build telemetry recorded in this process). Tests pass
	// a private registry for isolation.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.Metrics == nil {
		o.Metrics = obs.Default
	}
	return o
}

// Server wraps a trained model with HTTP handlers.
type Server struct {
	opts     Options
	model    atomic.Pointer[core.Model]
	mux      *http.ServeMux
	inflight chan struct{}
	m        serveMetrics
	// predict computes the forecast; tests substitute it to exercise the
	// degraded, timeout and shedding paths without a pathological model.
	predict func(ctx context.Context, m *core.Model, history []float64, steps int) ([]float64, error)
}

// routeMetrics is the cached per-route handle pair — looked up once at
// construction so the request path costs two atomics plus one histogram
// observation, not a registry lookup.
type routeMetrics struct {
	requests *obs.Counter
	latency  *obs.Histogram
}

// serveMetrics caches every handle the handlers touch.
type serveMetrics struct {
	reg            *obs.Registry
	routes         map[string]routeMetrics
	inflight       *obs.Gauge
	degraded       *obs.Counter
	reloads        *obs.Counter
	reloadFailures *obs.Counter
}

// serveRoutes are the instrumented route labels; unknown paths share
// "other" so a scanner cannot inflate the registry with junk names.
var serveRoutes = map[string]string{
	"/healthz":     "healthz",
	"/v1/model":    "model",
	"/v1/forecast": "forecast",
	"/v1/reload":   "reload",
}

func newServeMetrics(reg *obs.Registry) serveMetrics {
	m := serveMetrics{
		reg:            reg,
		routes:         make(map[string]routeMetrics, len(serveRoutes)+1),
		inflight:       reg.Gauge("serve.inflight"),
		degraded:       reg.Counter("serve.degraded"),
		reloads:        reg.Counter("serve.reloads"),
		reloadFailures: reg.Counter("serve.reload_failures"),
	}
	for _, name := range serveRoutes {
		m.routes[name] = routeMetrics{
			requests: reg.Counter("serve.requests." + name),
			latency:  reg.Histogram("serve.latency_seconds." + name),
		}
	}
	m.routes["other"] = routeMetrics{
		requests: reg.Counter("serve.requests.other"),
		latency:  reg.Histogram("serve.latency_seconds.other"),
	}
	return m
}

func (m serveMetrics) route(path string) routeMetrics {
	if name, ok := serveRoutes[path]; ok {
		return m.routes[name]
	}
	return m.routes["other"]
}

// statusWriter captures the response status code for the status-class
// counters (200 when the handler never calls WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// New returns a hardened server for the given trained model.
func New(model *core.Model, opts Options) (*Server, error) {
	if model == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	opts = opts.withDefaults()
	s := &Server{
		opts:     opts,
		mux:      http.NewServeMux(),
		inflight: make(chan struct{}, opts.MaxInFlight),
		m:        newServeMetrics(opts.Metrics),
		predict: func(ctx context.Context, m *core.Model, history []float64, steps int) ([]float64, error) {
			return m.PredictStepsContext(ctx, history, steps)
		},
	}
	s.model.Store(model)
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/model", s.handleModel)
	s.mux.HandleFunc("/v1/forecast", s.handleForecast)
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	return s, nil
}

// Model returns the currently served model (it may change across Reload).
func (s *Server) Model() *core.Model { return s.model.Load() }

// Reload atomically replaces the served model with a fresh load from
// Options.ModelPath. On any load or validation error the old model keeps
// serving.
func (s *Server) Reload() error {
	if s.opts.ModelPath == "" {
		return fmt.Errorf("serve: reload unavailable: server was started without a model path")
	}
	m, err := core.LoadFile(s.opts.ModelPath)
	if err != nil {
		s.m.reloadFailures.Inc()
		return fmt.Errorf("serve: reload: %w", err)
	}
	s.model.Store(m)
	s.m.reloads.Inc()
	return nil
}

// Admin returns the operator-only handler: GET /debug/metrics serves a JSON
// snapshot of the server's metrics registry (including build telemetry when
// the registry is obs.Default), and enablePprof additionally mounts
// net/http/pprof under /debug/pprof/. Bind it to a loopback or otherwise
// access-controlled listener — pprof and metrics leak operational detail and
// must never share the public forecast port.
func (s *Server) Admin(enablePprof bool) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		writeJSON(w, http.StatusOK, s.m.reg.Snapshot())
	})
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// ServeHTTP implements http.Handler with panic recovery and request
// metering: a panicking handler produces a JSON 500 instead of killing the
// connection (and, for handlers run without net/http's own recovery, the
// process), and every request — including recovered panics — lands in the
// per-route request counter, the per-status-code counter and the per-route
// latency histogram.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	rm := s.m.route(r.URL.Path)
	rm.requests.Inc()
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	start := time.Now()
	defer func() {
		if rec := recover(); rec != nil {
			httpError(sw, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
		}
		rm.latency.Observe(time.Since(start).Seconds())
		s.m.reg.Counter("serve.status." + strconv.Itoa(sw.code)).Inc()
	}()
	s.mux.ServeHTTP(sw, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ModelInfo is the /v1/model response body.
type ModelInfo struct {
	Hyperparams struct {
		HistoryLen int `json:"history_len"`
		CellSize   int `json:"cell_size"`
		Layers     int `json:"layers"`
		BatchSize  int `json:"batch_size"`
	} `json:"hyperparams"`
	ValidationMAPE float64 `json:"validation_mape"`
	NumWeights     int     `json:"num_weights"`
}

func modelInfo(m *core.Model) ModelInfo {
	var info ModelInfo
	info.Hyperparams.HistoryLen = m.HP.HistoryLen
	info.Hyperparams.CellSize = m.HP.CellSize
	info.Hyperparams.Layers = m.HP.Layers
	info.Hyperparams.BatchSize = m.HP.BatchSize
	info.ValidationMAPE = m.ValError
	info.NumWeights = m.NumParams()
	return info
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, modelInfo(s.model.Load()))
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.opts.ModelPath == "" {
		httpError(w, http.StatusConflict, "reload unavailable: server was started without a model path")
		return
	}
	if err := s.Reload(); err != nil {
		// The previous model keeps serving; tell the operator why the swap
		// was refused.
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"reloaded": true, "model": modelInfo(s.model.Load())})
}

// ForecastRequest is the /v1/forecast request body. History must contain at
// least the model's history length of recent JARs (oldest first).
type ForecastRequest struct {
	History []float64 `json:"history"`
	Steps   int       `json:"steps"` // 0 or absent: 1 step
}

// ForecastResponse is the /v1/forecast response body. Degraded is set when
// the LSTM emitted non-finite values and the forecasts come from the naive
// last-value fallback instead — still actionable for an auto-scaler, unlike
// a 5xx or NaN.
type ForecastResponse struct {
	Forecasts []float64 `json:"forecasts"`
	Degraded  bool      `json:"degraded,omitempty"`
	Fallback  string    `json:"fallback,omitempty"`
	Reason    string    `json:"reason,omitempty"`
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	// Load shedding: beyond MaxInFlight concurrent forecasts, fail fast
	// with 503 rather than queueing unboundedly.
	select {
	case s.inflight <- struct{}{}:
		s.m.inflight.Add(1)
		defer func() {
			s.m.inflight.Add(-1)
			<-s.inflight
		}()
	default:
		w.Header().Set("Retry-After", "1")
		httpError(w, http.StatusServiceUnavailable, "server is at capacity, retry shortly")
		return
	}

	var req ForecastRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if req.Steps == 0 {
		req.Steps = 1
	}
	if req.Steps < 0 || req.Steps > MaxSteps {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("steps must be 1..%d", MaxSteps))
		return
	}
	if len(req.History) == 0 {
		httpError(w, http.StatusBadRequest, "history is required")
		return
	}
	if len(req.History) > MaxHistoryLen {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("history exceeds %d values", MaxHistoryLen))
		return
	}
	model := s.model.Load()
	if len(req.History) < model.HP.HistoryLen {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("history has %d values, model needs at least %d", len(req.History), model.HP.HistoryLen))
		return
	}
	for i, v := range req.History {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("history[%d] is non-finite (%v)", i, v))
			return
		}
		if v < 0 {
			httpError(w, http.StatusBadRequest, fmt.Sprintf("history[%d] is negative (%v): job arrival rates are non-negative", i, v))
			return
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	forecasts, err := s.predict(ctx, model, req.History, req.Steps)
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			httpError(w, http.StatusGatewayTimeout, "forecast timed out")
			return
		}
		// The model is this handler's upstream: its failure is a 502, not a
		// 500, so operators can tell model trouble from handler bugs.
		httpError(w, http.StatusBadGateway, "model error: "+err.Error())
		return
	}
	resp := ForecastResponse{Forecasts: forecasts}
	if !allFinite(forecasts) {
		// Degraded mode: a non-finite forecast would (best case) break the
		// client's JSON decoding and (worst case) drive scaling decisions
		// from garbage. Serve the naive last-value prediction, flagged so
		// the auto-scaler knows it is flying on instruments.
		s.m.degraded.Inc()
		resp = ForecastResponse{
			Forecasts: lastValueForecast(req.History, req.Steps),
			Degraded:  true,
			Fallback:  "last-value",
			Reason:    "model emitted non-finite forecast values",
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// lastValueForecast is the degraded-mode predictor: the last observed JAR
// repeated over the horizon — the strongest assumption-free forecast when
// the model cannot be trusted.
func lastValueForecast(history []float64, steps int) []float64 {
	last := history[len(history)-1]
	out := make([]float64, steps)
	for i := range out {
		out[i] = last
	}
	return out
}

func allFinite(values []float64) bool {
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
