// Package serve exposes trained LoadDynamics models as an HTTP forecast
// service — the integration point an auto-scaler polls each interval. The
// handlers are stdlib net/http only, hardened for production: panics are
// recovered to JSON 500s, forecasts run under a per-request timeout, an
// in-flight limiter sheds excess load with 503s, corrupt model output is
// replaced by a degraded last-value fallback instead of poisoning the
// auto-scaler, and models can be hot-reloaded atomically.
//
// The server is fleet-backed: it routes per-workload requests into an
// internal/fleet registry, feeds observed arrivals to the fleet's online
// evaluator (closing the drift→rebuild loop), and keeps the original
// single-model endpoints as aliases for a configurable default workload.
//
// Endpoints:
//
//	GET  /healthz                         liveness probe
//	GET  /v1/workloads                    per-workload health list
//	GET  /v1/workloads/{id}               one workload's health + transfer profile
//	POST /v1/workloads/{id}/forecast      {"history": [...], "steps": n} → {"forecasts": [...]}
//	POST /v1/workloads/{id}/observe       {"values": [...]} → rolling-error status
//	GET  /v1/workloads/{id}/model         model metadata + workload health
//	GET  /v1/workloads/{id}/timeline      flight-recorder causal event timeline
//	GET  /v1/model                        alias: default workload's model
//	POST /v1/forecast                     alias: default workload forecast
//	POST /v1/forecast:batch               many (workload, history, steps) forecasts in one call
//	POST /v1/reload                       reload the default workload from disk
//
// Every request is metered (per-route counters and latency histograms,
// per-status-code counters, an in-flight gauge, degraded-fallback and
// reload counters); Admin returns the operator-only mux exposing the
// snapshot at GET /debug/metrics (Prometheus 0.0.4 or OpenMetrics 1.0 via
// Accept negotiation), flight-recorder stats at GET /debug/flight, plus
// opt-in net/http/pprof.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"loaddynamics/internal/core"
	"loaddynamics/internal/fleet"
	"loaddynamics/internal/obs"
)

// MaxHistoryLen is the default bound on forecast request payloads (DoS
// hygiene); override per server with Options.MaxHistory.
const MaxHistoryLen = 100_000

// MaxSteps bounds the iterated forecast horizon per request.
const MaxSteps = 1000

// MaxObservationsLen is the default bound on one observe request's value
// count; override per server with Options.MaxObservations.
const MaxObservationsLen = 10_000

// DefaultWorkloadID names the workload the single-model alias routes serve
// when Options.DefaultWorkload is unset.
const DefaultWorkloadID = "default"

// Options tune the server's protective limits. The zero value gets
// production defaults.
type Options struct {
	// ModelPath is the file /v1/reload (and SIGHUP in cmd/loadserve)
	// re-reads the default workload's model from. Empty falls back to the
	// fleet's own snapshot directory; with neither, reloading is disabled.
	ModelPath string
	// DefaultWorkload is the fleet workload the alias routes (/v1/model,
	// /v1/forecast, /v1/reload) serve (default "default"; for a fleet
	// without that ID, the first workload ID in sorted order).
	DefaultWorkload string
	// RequestTimeout bounds each forecast computation (default 10s). The
	// model honors it between forecast steps, so a 1000-step request on a
	// slow model cannot wedge a connection forever.
	RequestTimeout time.Duration
	// MaxInFlight is the number of concurrent forecast requests served
	// before the rest are shed with 503s (default 64). Shedding keeps tail
	// latency bounded when an auto-scaler fleet stampedes.
	MaxInFlight int
	// RetryAfterBase is the Retry-After hint attached to shed 503s under
	// light pressure (default 1s). The advertised delay scales with the
	// consecutive-shed streak — sustained shedding means the fleet of
	// clients must back off harder than a momentary spike.
	RetryAfterBase time.Duration
	// RetryAfterMax caps the pressure-scaled Retry-After hint (default
	// 30s), so a long overload cannot push clients into hour-long sleeps.
	RetryAfterMax time.Duration
	// MaxHistory caps the history length accepted by forecast requests
	// (default MaxHistoryLen); longer payloads are rejected with 400.
	MaxHistory int
	// MaxObservations caps the value count accepted by one observe request
	// (default MaxObservationsLen); larger batches are rejected with 400.
	MaxObservations int
	// MaxBodyBytes caps request body size via http.MaxBytesReader
	// (default 16 MiB).
	MaxBodyBytes int64
	// MaxBatch caps the entry count accepted by POST /v1/forecast:batch
	// (default 256); larger batches are rejected with 400.
	MaxBatch int
	// MaxStreamBytes caps one POST /v1/observe:stream request body via
	// http.MaxBytesReader (default 64 MiB — stream bodies legitimately
	// dwarf single-request bodies).
	MaxStreamBytes int64
	// ForecastCacheTTL, when positive, enables the TTL forecast cache:
	// identical (workload, model version, history window, steps) requests
	// inside the TTL are served from memory with singleflight on miss, and
	// promotions/reloads invalidate the workload's entries. Zero disables
	// caching (the default — correctness first, opt in for speed).
	ForecastCacheTTL time.Duration
	// ForecastCacheCap bounds the cache's entry count (default 4096 when
	// the cache is enabled); the least-recently-used entries are evicted
	// beyond it.
	ForecastCacheCap int
	// Metrics is the registry request metrics are reported to (default:
	// obs.Default, so one /debug/metrics snapshot covers the serving
	// layer, the fleet and any build telemetry recorded in this process).
	// Tests pass a private registry for isolation.
	Metrics *obs.Registry
	// Logger receives one structured request log line per request
	// (obs schema: component, route, workload, status, duration_ms,
	// request_id) plus server lifecycle events. Default: slog.Default().
	Logger *slog.Logger
	// Trace, when non-nil, records a serve.request span per request with
	// the request's correlation ID, so an X-Request-ID read off a
	// response joins the slog line and the exported trace record.
	Trace *obs.Trace
	// Flight, when non-nil, is the flight recorder trace IDs are minted
	// from: each request (and each streamed record batch) gets a causal
	// trace that follows the observation through the fleet's ingest, drift
	// and rebuild pipeline, readable at /v1/workloads/{id}/timeline. Nil
	// falls back to the fleet's own recorder (fleet.Options.Flight); with
	// neither, tracing is off and the ingest path stays allocation-free.
	Flight *obs.FlightRecorder
	// SLOLatencyP99 is the per-route latency objective: 99% of forecast
	// requests complete within this bound (default 2s).
	SLOLatencyP99 time.Duration
	// SLOErrorRate is the per-route availability objective: the allowed
	// fraction of 5xx responses (default 0.01).
	SLOErrorRate float64
	// SLODriftMAPE is the model-quality objective: a workload whose
	// rolling MAPE gauge sustains above this percentage burns its SLO
	// (default 50, matching the fleet's drift threshold).
	SLODriftMAPE float64
}

func (o Options) withDefaults() Options {
	if o.RequestTimeout <= 0 {
		o.RequestTimeout = 10 * time.Second
	}
	if o.MaxInFlight <= 0 {
		o.MaxInFlight = 64
	}
	if o.RetryAfterBase <= 0 {
		o.RetryAfterBase = time.Second
	}
	if o.RetryAfterMax <= 0 {
		o.RetryAfterMax = 30 * time.Second
	}
	if o.RetryAfterMax < o.RetryAfterBase {
		o.RetryAfterMax = o.RetryAfterBase
	}
	if o.MaxHistory <= 0 {
		o.MaxHistory = MaxHistoryLen
	}
	if o.MaxObservations <= 0 {
		o.MaxObservations = MaxObservationsLen
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 16 << 20
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 256
	}
	if o.MaxStreamBytes <= 0 {
		o.MaxStreamBytes = 64 << 20
	}
	if o.ForecastCacheTTL > 0 && o.ForecastCacheCap <= 0 {
		o.ForecastCacheCap = 4096
	}
	if o.Metrics == nil {
		o.Metrics = obs.Default
	}
	if o.Logger == nil {
		o.Logger = slog.Default()
	}
	if o.SLOLatencyP99 <= 0 {
		o.SLOLatencyP99 = 2 * time.Second
	}
	if o.SLOErrorRate <= 0 || o.SLOErrorRate >= 1 {
		o.SLOErrorRate = 0.01
	}
	if o.SLODriftMAPE <= 0 {
		o.SLODriftMAPE = 50
	}
	return o
}

// Server routes HTTP requests into a workload fleet.
type Server struct {
	opts      Options
	fleet     *fleet.Fleet
	flight    *obs.FlightRecorder
	defaultID string
	mux       *http.ServeMux
	inflight  chan struct{}
	// shedStreak counts consecutive shed requests since the last
	// successful slot acquisition; it scales the Retry-After hint so
	// clients back off in proportion to how hard the server is shedding.
	shedStreak atomic.Int64
	// ingestStreak is the stream-ingest equivalent: consecutive 429s on
	// /v1/observe:stream since the last fully admitted stream. Kept
	// separate from shedStreak — forecast capacity and ingest-queue
	// pressure are different bottlenecks with different recovery times.
	ingestStreak atomic.Int64
	m            serveMetrics
	log          *slog.Logger
	slo          *obs.SLOEngine
	// cache is the TTL forecast cache (nil when disabled). Keys carry the
	// fleet's promotion version and promotions invalidate via OnPromote, so
	// a stale forecast can never be served after a promotion.
	cache *fleet.ForecastCache
	// predict computes one forecast and predictBatch a fused multi-entry
	// batch; tests substitute them to exercise the degraded, timeout,
	// shedding and cache paths without a pathological model.
	predict      func(ctx context.Context, m *core.Model, history []float64, steps int) ([]float64, error)
	predictBatch func(ctx context.Context, m *core.Model, histories [][]float64, steps []int) ([][]float64, error)
}

// routeMetrics is the cached per-route handle set — looked up once at
// construction so the request path costs a few atomics plus one
// histogram observation, not a registry lookup. errors counts 5xx
// responses; together with requests it feeds the route's availability
// SLO.
type routeMetrics struct {
	requests *obs.Counter
	errors   *obs.Counter
	latency  *obs.Histogram
}

// serveMetrics caches every handle the handlers touch.
type serveMetrics struct {
	reg            *obs.Registry
	routes         map[string]routeMetrics
	inflight       *obs.Gauge
	degraded       *obs.Counter
	reloads        *obs.Counter
	reloadFailures *obs.Counter
	streamAccepted *obs.Counter
	streamRejected *obs.Counter
	streamShed     *obs.Counter
}

// serveRoutes are the fixed-path route labels; the per-workload patterns are
// classified by routeLabel, and unknown paths share "other" so a scanner
// cannot inflate the registry with junk names.
var serveRoutes = map[string]string{
	"/healthz":           "healthz",
	"/v1/model":          "model",
	"/v1/forecast":       "forecast",
	"/v1/forecast:batch": "forecast_batch",
	"/v1/observe:stream": "observe_stream",
	"/v1/reload":         "reload",
	"/v1/workloads":      "workloads",
}

// workloadRoutes label the /v1/workloads/{id}/... patterns by suffix.
var workloadRoutes = map[string]string{
	"forecast": "workload_forecast",
	"observe":  "workload_observe",
	"model":    "workload_model",
	"timeline": "workload_timeline",
}

// routeLabel maps a request path to its metric label.
func routeLabel(path string) string {
	if name, ok := serveRoutes[path]; ok {
		return name
	}
	if rest, ok := strings.CutPrefix(path, "/v1/workloads/"); ok {
		if i := strings.LastIndexByte(rest, '/'); i >= 0 {
			if name, ok := workloadRoutes[rest[i+1:]]; ok {
				return name
			}
		} else if rest != "" {
			// Bare /v1/workloads/{id}: the per-workload status view.
			return "workload_status"
		}
	}
	return "other"
}

func newServeMetrics(reg *obs.Registry) serveMetrics {
	m := serveMetrics{
		reg:            reg,
		routes:         make(map[string]routeMetrics, len(serveRoutes)+len(workloadRoutes)+1),
		inflight:       reg.Gauge("serve.inflight"),
		degraded:       reg.Counter("serve.degraded"),
		reloads:        reg.Counter("serve.reloads"),
		reloadFailures: reg.Counter("serve.reload_failures"),
		streamAccepted: reg.Counter("serve.stream.accepted"),
		streamRejected: reg.Counter("serve.stream.rejected"),
		streamShed:     reg.Counter("serve.stream.shed"),
	}
	names := []string{"other", "workload_status"}
	for _, name := range serveRoutes {
		names = append(names, name)
	}
	for _, name := range workloadRoutes {
		names = append(names, name)
	}
	for _, name := range names {
		m.routes[name] = routeMetrics{
			requests: reg.Counter("serve.requests." + name),
			errors:   reg.Counter("serve.errors." + name),
			latency:  reg.Histogram("serve.latency_seconds." + name),
		}
	}
	return m
}

func (m serveMetrics) route(path string) routeMetrics {
	return m.routes[routeLabel(path)]
}

// statusWriter captures the response status code for the status-class
// counters (200 when the handler never calls WriteHeader explicitly).
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// New returns a hardened single-model server: a memory-only fleet holding
// one default workload, served by the alias routes. The fleet endpoints
// work too — they see that one workload.
func New(model *core.Model, opts Options) (*Server, error) {
	if model == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	id := opts.DefaultWorkload
	if id == "" {
		id = DefaultWorkloadID
	}
	fl, err := fleet.Open(fleet.Options{Metrics: opts.withDefaults().Metrics, Flight: opts.Flight})
	if err != nil {
		return nil, err
	}
	if err := fl.Add(id, model); err != nil {
		return nil, err
	}
	// The server owns this fleet, so it owns starting the stream-ingest
	// workers too. NewFleet leaves that to the caller.
	fl.StartIngest()
	return NewFleet(fl, opts)
}

// NewFleet returns a server routing into an existing (non-empty) fleet. The
// caller owns the fleet's lifecycle: Start its rebuild workers to enable
// drift-triggered self-rebuilds, StartIngest its stream-ingest workers so
// POST /v1/observe:stream drains (an unstarted fleet accepts streams only
// until its shard queues fill, then answers 429), and Close it on shutdown.
func NewFleet(fl *fleet.Fleet, opts Options) (*Server, error) {
	if fl == nil {
		return nil, fmt.Errorf("serve: nil fleet")
	}
	ids := fl.IDs()
	if len(ids) == 0 {
		return nil, fmt.Errorf("serve: fleet has no workloads")
	}
	opts = opts.withDefaults()
	defaultID := opts.DefaultWorkload
	switch {
	case defaultID == "" && contains(ids, DefaultWorkloadID):
		defaultID = DefaultWorkloadID
	case defaultID == "":
		defaultID = ids[0]
	case !contains(ids, defaultID):
		return nil, fmt.Errorf("serve: default workload %q is not in the fleet %v", defaultID, ids)
	}
	flight := opts.Flight
	if flight == nil {
		flight = fl.Flight()
	}
	s := &Server{
		opts:      opts,
		fleet:     fl,
		flight:    flight,
		defaultID: defaultID,
		mux:       http.NewServeMux(),
		inflight:  make(chan struct{}, opts.MaxInFlight),
		m:         newServeMetrics(opts.Metrics),
		log:       opts.Logger.With(obs.LogComponent, "serve"),
		slo:       newServeSLO(opts, ids),
		cache:     fleet.NewForecastCache(opts.ForecastCacheTTL, opts.ForecastCacheCap, opts.Metrics),
		predict: func(ctx context.Context, m *core.Model, history []float64, steps int) ([]float64, error) {
			return m.PredictStepsContext(ctx, history, steps)
		},
		predictBatch: func(ctx context.Context, m *core.Model, histories [][]float64, steps []int) ([][]float64, error) {
			return m.PredictStepsBatch(ctx, histories, steps)
		},
	}
	if s.cache != nil {
		fl.OnPromote(s.cache.InvalidateWorkload)
	}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/model", func(w http.ResponseWriter, r *http.Request) {
		s.handleModel(w, r, s.defaultID)
	})
	s.mux.HandleFunc("/v1/forecast", func(w http.ResponseWriter, r *http.Request) {
		s.handleForecast(w, r, s.defaultID)
	})
	s.mux.HandleFunc("/v1/forecast:batch", s.handleForecastBatch)
	s.mux.HandleFunc("/v1/observe:stream", s.handleObserveStream)
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	s.mux.HandleFunc("/v1/workloads", s.handleWorkloads)
	s.mux.HandleFunc("/v1/workloads/{id}", func(w http.ResponseWriter, r *http.Request) {
		s.handleWorkloadStatus(w, r, r.PathValue("id"))
	})
	s.mux.HandleFunc("/v1/workloads/{id}/forecast", func(w http.ResponseWriter, r *http.Request) {
		s.handleForecast(w, r, r.PathValue("id"))
	})
	s.mux.HandleFunc("/v1/workloads/{id}/observe", func(w http.ResponseWriter, r *http.Request) {
		s.handleObserve(w, r, r.PathValue("id"))
	})
	s.mux.HandleFunc("/v1/workloads/{id}/model", func(w http.ResponseWriter, r *http.Request) {
		s.handleModel(w, r, r.PathValue("id"))
	})
	s.mux.HandleFunc("/v1/workloads/{id}/timeline", func(w http.ResponseWriter, r *http.Request) {
		s.handleTimeline(w, r, r.PathValue("id"))
	})
	return s, nil
}

// sloRoutes are the routes that carry availability and latency
// objectives — the forecast paths an auto-scaler's scaling decision
// blocks on.
var sloRoutes = []string{"forecast", "forecast_batch", "workload_forecast", "observe_stream"}

// newServeSLO builds the server's SLO engine: per-route p99-latency and
// 5xx-error-rate objectives over the serve.* metrics, plus one
// model-quality objective per fleet workload over its rolling-MAPE
// gauge, so a drifting model alerts through the same burn-rate path as
// a latency regression.
func newServeSLO(opts Options, workloadIDs []string) *obs.SLOEngine {
	e := obs.NewSLOEngine(opts.Metrics, obs.SLOOptions{})
	for _, route := range sloRoutes {
		// Objectives over pre-registered metric names cannot fail
		// validation; a failure here would be a programming error.
		_ = e.AddObjective(obs.SLOObjective{
			Name: "availability:" + route, Kind: obs.SLOErrorRate,
			Total: "serve.requests." + route, Errors: "serve.errors." + route,
			Threshold: opts.SLOErrorRate,
		})
		_ = e.AddObjective(obs.SLOObjective{
			Name: "latency:" + route, Kind: obs.SLOLatency,
			Histogram: "serve.latency_seconds." + route,
			Quantile:  0.99, Threshold: opts.SLOLatencyP99.Seconds(),
		})
	}
	for _, id := range workloadIDs {
		_ = e.AddGaugeObjective("drift:"+id, "fleet.rolling_mape_pct."+id, opts.SLODriftMAPE)
	}
	return e
}

func contains(ids []string, id string) bool {
	for _, x := range ids {
		if x == id {
			return true
		}
	}
	return false
}

// Fleet returns the workload registry the server routes into.
func (s *Server) Fleet() *fleet.Fleet { return s.fleet }

// Model returns the default workload's currently served model (it may
// change across Reload and fleet promotions).
func (s *Server) Model() *core.Model {
	m, _ := s.fleet.Model(s.defaultID)
	return m
}

// Reload atomically replaces the default workload's served model:
// re-reading Options.ModelPath when set, otherwise re-reading the fleet's
// own snapshot. On any load or validation error the old model keeps
// serving.
func (s *Server) Reload() error {
	switch {
	case s.opts.ModelPath != "":
		m, err := core.LoadFile(s.opts.ModelPath)
		if err != nil {
			s.m.reloadFailures.Inc()
			return fmt.Errorf("serve: reload: %w", err)
		}
		if err := s.fleet.Promote(s.defaultID, m); err != nil {
			s.m.reloadFailures.Inc()
			return fmt.Errorf("serve: reload: %w", err)
		}
	case s.fleet.Persistent():
		if err := s.fleet.ReloadWorkload(s.defaultID); err != nil {
			s.m.reloadFailures.Inc()
			return fmt.Errorf("serve: reload: %w", err)
		}
	default:
		return fmt.Errorf("serve: reload unavailable: server was started without a model path")
	}
	s.m.reloads.Inc()
	return nil
}

// SLO returns the server's burn-rate engine for direct sampling — tests
// drive it with synthetic clocks, and StartTelemetry runs it on a ticker.
func (s *Server) SLO() *obs.SLOEngine { return s.slo }

// StartTelemetry starts the background collectors the admin endpoints
// read from: the runtime collector (goroutines, heap, GC pauses) and the
// SLO engine's sampling loop. Both stop when ctx is cancelled. interval
// <= 0 uses each collector's default cadence.
func (s *Server) StartTelemetry(ctx context.Context, interval time.Duration) {
	rc := obs.NewRuntimeCollector(s.m.reg)
	go rc.Run(ctx, interval)
	go s.slo.Run(ctx, interval)
	s.log.Info("telemetry started", "interval", interval.String())
}

// Admin returns the operator-only handler:
//
//	GET /debug/metrics            JSON snapshot of the metrics registry
//	GET /debug/metrics?format=prometheus  text exposition of the same
//	GET /metrics                  alias for the text exposition
//	GET /debug/slo                burn-rate state of every SLO objective
//	GET /debug/health             200 ok / 503 when a page-severity burn fires
//	GET /debug/flight             flight-recorder stats (?workload=id → events)
//
// The text exposition defaults to Prometheus 0.0.4 and upgrades to
// OpenMetrics 1.0 — exemplars included — when the scraper negotiates it
// (Accept: application/openmetrics-text, or ?format=openmetrics).
//
// enablePprof additionally mounts net/http/pprof under /debug/pprof/. Bind
// the admin mux to a loopback or otherwise access-controlled listener —
// pprof and metrics leak operational detail and must never share the
// public forecast port.
func (s *Server) Admin(enablePprof bool) http.Handler {
	mux := http.NewServeMux()
	metrics := func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		format := r.URL.Query().Get("format")
		// An OpenMetrics Accept header upgrades /debug/metrics from its
		// JSON default just like ?format=openmetrics does — scrapers
		// negotiate by header, humans by query parameter.
		wantsText := format == "prometheus" || format == "openmetrics" ||
			r.URL.Path == "/metrics" || obs.AcceptsOpenMetrics(r.Header.Get("Accept"))
		if wantsText {
			// Content negotiation: OpenMetrics 1.0 (exemplars, `# EOF`) when
			// the scraper asks for it by Accept header or ?format=openmetrics;
			// Prometheus 0.0.4 otherwise. ?format=prometheus pins 0.0.4
			// regardless of Accept, so operators can force the legacy form.
			if format != "prometheus" &&
				(format == "openmetrics" || obs.AcceptsOpenMetrics(r.Header.Get("Accept"))) {
				w.Header().Set("Content-Type", obs.ContentTypeOpenMetrics)
				_ = s.m.reg.WriteOpenMetrics(w)
				return
			}
			w.Header().Set("Content-Type", obs.ContentTypePrometheus)
			_ = s.m.reg.WritePrometheus(w)
			return
		}
		writeJSON(w, http.StatusOK, s.m.reg.Snapshot())
	}
	mux.HandleFunc("/debug/metrics", metrics)
	mux.HandleFunc("/metrics", metrics)
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		if id := r.URL.Query().Get("workload"); id != "" {
			events := s.flight.Events(id)
			if events == nil {
				events = []obs.FlightEvent{}
			}
			writeJSON(w, http.StatusOK, TimelineResponse{
				Workload: id, Enabled: s.flight.Enabled(), Events: events,
			})
			return
		}
		writeJSON(w, http.StatusOK, s.flight.Stats())
	})
	mux.HandleFunc("/debug/slo", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		writeJSON(w, http.StatusOK, s.slo.Status())
	})
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			httpError(w, http.StatusMethodNotAllowed, "use GET")
			return
		}
		if firing := s.slo.Firing(); len(firing) > 0 {
			writeJSON(w, http.StatusServiceUnavailable, map[string]any{
				"status": "failing", "firing": firing,
			})
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	if enablePprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// traceIDKey carries the request's minted flight trace ID through the
// request context to the observe handlers.
type traceIDKey struct{}

// requestTrace reads the trace ID ServeHTTP minted for this request (0
// when the flight recorder is off).
func requestTrace(r *http.Request) uint64 {
	id, _ := r.Context().Value(traceIDKey{}).(uint64)
	return id
}

// requestWorkload names the workload a request path targets: the {id}
// segment for fleet routes, the default workload for the alias routes,
// empty for everything else. Used only as a log/span attribute, so an
// unparseable path degrades to "".
func (s *Server) requestWorkload(path string) string {
	switch path {
	case "/v1/model", "/v1/forecast", "/v1/reload":
		return s.defaultID
	}
	if rest, ok := strings.CutPrefix(path, "/v1/workloads/"); ok {
		if i := strings.IndexByte(rest, '/'); i > 0 {
			return rest[:i]
		}
	}
	return ""
}

// ServeHTTP implements http.Handler with panic recovery and request
// metering: a panicking handler produces a JSON 500 instead of killing the
// connection (and, for handlers run without net/http's own recovery, the
// process), and every request — including recovered panics — lands in the
// per-route request counter, the per-status-code counter and the per-route
// latency histogram, with 5xx responses feeding the route's error-rate SLO.
//
// Each request carries a correlation ID: an X-Request-ID supplied by the
// caller is honored (if well-formed), otherwise one is minted; either way
// it is echoed in the response header, stamped on the request's slog line,
// and — when tracing is enabled — recorded on the serve.request span, so
// one ID joins the access log and the exported trace.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	route := routeLabel(r.URL.Path)
	rm := s.m.routes[route]
	rm.requests.Inc()
	reqID := r.Header.Get("X-Request-ID")
	if !obs.ValidRequestID(reqID) {
		reqID = obs.NewRequestID()
	}
	w.Header().Set("X-Request-ID", reqID)
	workload := s.requestWorkload(r.URL.Path)
	// With the flight recorder on, every request mints a causal trace ID:
	// the observe handlers thread it into the fleet (so the resulting
	// drift/rebuild chain inherits it) and the latency histogram keeps it
	// as an OpenMetrics exemplar. One atomic add per request; zero cost
	// when recording is off (traceID stays 0 and nothing allocates).
	var traceID uint64
	if s.flight.Enabled() {
		traceID = s.flight.NewTrace()
		r = r.WithContext(context.WithValue(r.Context(), traceIDKey{}, traceID))
	}
	span := s.opts.Trace.Start("serve.request").
		SetTrace(traceID).
		SetAttr(obs.LogRequestID, reqID).
		SetAttr(obs.LogRoute, route)
	if workload != "" {
		span.SetAttr(obs.LogWorkload, workload)
	}
	sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
	start := time.Now()
	defer func() {
		if rec := recover(); rec != nil {
			httpError(sw, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", rec))
		}
		elapsed := time.Since(start)
		rm.latency.ObserveExemplar(elapsed.Seconds(), traceID)
		s.m.reg.Counter("serve.status." + strconv.Itoa(sw.code)).Inc()
		level := slog.LevelInfo
		outcome := obs.OutcomeOK
		if sw.code >= 500 {
			rm.errors.Inc()
			level = slog.LevelError
			outcome = "error"
		}
		span.SetAttr(obs.LogStatus, sw.code).EndOutcome(outcome)
		s.log.Log(r.Context(), level, "request",
			obs.LogRoute, route,
			obs.LogWorkload, workload,
			obs.LogStatus, sw.code,
			obs.LogDurationMS, float64(elapsed)/float64(time.Millisecond),
			obs.LogRequestID, reqID,
		)
	}()
	s.mux.ServeHTTP(sw, r)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// workloadModel resolves a workload ID to its model, writing the error
// response (400 invalid ID, 404 unknown, 503 unloadable snapshot) itself.
func (s *Server) workloadModel(w http.ResponseWriter, id string) (*core.Model, bool) {
	m, _, ok := s.workloadModelVersion(w, id)
	return m, ok
}

// workloadModelVersion is workloadModel plus the fleet's promotion version —
// the forecast handlers use it so cache keys carry the version the model was
// read under.
func (s *Server) workloadModelVersion(w http.ResponseWriter, id string) (*core.Model, int64, bool) {
	if err := fleet.ValidateID(id); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return nil, 0, false
	}
	m, v, err := s.fleet.ModelWithVersion(id)
	switch {
	case errors.Is(err, fleet.ErrUnknownWorkload):
		httpError(w, http.StatusNotFound, err.Error())
		return nil, 0, false
	case err != nil:
		// Registered but unloadable (e.g. a corrupt snapshot after
		// eviction): a server-side condition, not a caller mistake.
		httpError(w, http.StatusServiceUnavailable, err.Error())
		return nil, 0, false
	}
	return m, v, true
}

// ModelInfo is the model-metadata response body.
type ModelInfo struct {
	Hyperparams struct {
		HistoryLen int `json:"history_len"`
		CellSize   int `json:"cell_size"`
		Layers     int `json:"layers"`
		BatchSize  int `json:"batch_size"`
	} `json:"hyperparams"`
	ValidationMAPE float64 `json:"validation_mape"`
	NumWeights     int     `json:"num_weights"`
}

func modelInfo(m *core.Model) ModelInfo {
	var info ModelInfo
	info.Hyperparams.HistoryLen = m.HP.HistoryLen
	info.Hyperparams.CellSize = m.HP.CellSize
	info.Hyperparams.Layers = m.HP.Layers
	info.Hyperparams.BatchSize = m.HP.BatchSize
	info.ValidationMAPE = m.ValError
	info.NumWeights = m.NumParams()
	return info
}

// WorkloadModelInfo is the workload model response: the model metadata plus
// the workload's fleet health view.
type WorkloadModelInfo struct {
	ModelInfo
	Workload fleet.WorkloadStatus `json:"workload"`
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	m, ok := s.workloadModel(w, id)
	if !ok {
		return
	}
	st, _ := s.fleet.Status(id)
	writeJSON(w, http.StatusOK, WorkloadModelInfo{ModelInfo: modelInfo(m), Workload: st})
}

// WorkloadStatusResponse is the per-workload status body: the fleet
// health view plus the transfer-learning profile — the live workload
// fingerprint and how the most recent rebuild was seeded (which sibling
// workloads' tuned hyperparameters warm-started it, if any).
type WorkloadStatusResponse struct {
	Workload fleet.WorkloadStatus  `json:"workload"`
	Profile  fleet.WorkloadProfile `json:"profile"`
}

func (s *Server) handleWorkloadStatus(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	st, err := s.fleet.Status(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	wp, err := s.fleet.Profile(id)
	if err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, WorkloadStatusResponse{Workload: st, Profile: wp})
}

func (s *Server) handleWorkloads(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	durability := "ok"
	if s.fleet.DurabilityDegraded() {
		durability = "degraded"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"default":    s.defaultID,
		"durability": durability,
		"workloads":  s.fleet.Statuses(),
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if s.opts.ModelPath == "" && !s.fleet.Persistent() {
		httpError(w, http.StatusConflict, "reload unavailable: server was started without a model path")
		return
	}
	if err := s.Reload(); err != nil {
		// The previous model keeps serving; tell the operator why the swap
		// was refused.
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	m, ok := s.workloadModel(w, s.defaultID)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"reloaded": true, "model": modelInfo(m)})
}

// ForecastRequest is the forecast request body. History must contain at
// least the model's history length of recent JARs (oldest first).
type ForecastRequest struct {
	History []float64 `json:"history"`
	Steps   int       `json:"steps"` // 0 or absent: 1 step
}

// ForecastResponse is the forecast response body. Degraded is set when
// the LSTM emitted non-finite values and the forecasts come from the naive
// last-value fallback instead — still actionable for an auto-scaler, unlike
// a 5xx or NaN.
type ForecastResponse struct {
	Forecasts []float64 `json:"forecasts"`
	Degraded  bool      `json:"degraded,omitempty"`
	Fallback  string    `json:"fallback,omitempty"`
	Reason    string    `json:"reason,omitempty"`
}

// acquireSlot reserves an in-flight forecast slot. When the server is at
// capacity it writes the 503 (with a pressure-derived Retry-After hint)
// and reports false — load shedding fails fast rather than queueing
// unboundedly. A successful acquisition resets the shed streak: the
// server is admitting work again, so new clients get the base hint.
func (s *Server) acquireSlot(w http.ResponseWriter) bool {
	select {
	case s.inflight <- struct{}{}:
		s.shedStreak.Store(0)
		s.m.inflight.Add(1)
		return true
	default:
		w.Header().Set("Retry-After", s.retryAfter(s.shedStreak.Add(1)))
		httpError(w, http.StatusServiceUnavailable, "server is at capacity, retry shortly")
		return false
	}
}

func (s *Server) releaseSlot() {
	s.m.inflight.Add(-1)
	<-s.inflight
}

// retryAfter converts the consecutive-shed streak into a Retry-After
// value in whole seconds: the configured base scaled linearly by the
// streak and clamped to [RetryAfterBase, RetryAfterMax]. One shed during
// a blip advertises the base; a stampede that sheds every request walks
// the hint up to the cap, spreading the retry herd out.
func (s *Server) retryAfter(streak int64) string {
	base, max := s.opts.RetryAfterBase, s.opts.RetryAfterMax
	d := base
	if streak > 1 {
		if scaled := time.Duration(streak) * base; scaled > base {
			d = scaled
		} else {
			d = max // streak*base overflowed
		}
	}
	if d > max {
		d = max
	}
	secs := int64(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if !s.acquireSlot(w) {
		return
	}
	defer s.releaseSlot()

	req := forecastReqPool.Get().(*ForecastRequest)
	defer forecastReqPool.Put(req)
	req.History, req.Steps = req.History[:0], 0
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err := dec.Decode(req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	steps, msg := s.checkForecastInput(req.History, req.Steps)
	if msg != "" {
		httpError(w, http.StatusBadRequest, msg)
		return
	}
	model, version, ok := s.workloadModelVersion(w, id)
	if !ok {
		return
	}
	if len(req.History) < model.HP.HistoryLen {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("history has %d values, model needs at least %d", len(req.History), model.HP.HistoryLen))
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()
	// Only the last HistoryLen values influence the forecast, so the cache
	// keys on exactly that window — a client shipping a longer history
	// still hits.
	window := req.History[len(req.History)-model.HP.HistoryLen:]
	cf, hit, err := s.cache.Do(id, version, window, steps, func() (fleet.CachedForecast, error) {
		return s.computeForecast(ctx, model, req.History, steps)
	})
	if err != nil {
		if errors.Is(err, context.DeadlineExceeded) {
			httpError(w, http.StatusGatewayTimeout, "forecast timed out")
			return
		}
		// The model is this handler's upstream: its failure is a 502, not a
		// 500, so operators can tell model trouble from handler bugs.
		httpError(w, http.StatusBadGateway, "model error: "+err.Error())
		return
	}
	if s.cache != nil {
		if hit {
			w.Header().Set("X-Forecast-Cache", "hit")
		} else {
			w.Header().Set("X-Forecast-Cache", "miss")
		}
	}
	// What was actually served (fallback and cache hits included) is what
	// later observed arrivals are scored against.
	s.fleet.RecordForecast(id, cf.Forecasts)
	writeJSON(w, http.StatusOK, ForecastResponse{
		Forecasts: cf.Forecasts,
		Degraded:  cf.Degraded,
		Fallback:  cf.Fallback,
		Reason:    cf.Reason,
	})
}

// checkForecastInput validates one forecast's (history, steps) pair against
// the server's limits, normalizing steps (0 means 1). It returns the
// normalized step count and an error message ("" when valid) — shared
// between the single and batch forecast handlers so both reject with
// identical wording.
func (s *Server) checkForecastInput(history []float64, steps int) (int, string) {
	if steps == 0 {
		steps = 1
	}
	if steps < 0 || steps > MaxSteps {
		return 0, fmt.Sprintf("steps must be 1..%d", MaxSteps)
	}
	if len(history) == 0 {
		return 0, "history is required"
	}
	if len(history) > s.opts.MaxHistory {
		return 0, fmt.Sprintf("history exceeds %d values", s.opts.MaxHistory)
	}
	for i, v := range history {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, fmt.Sprintf("history[%d] is non-finite (%v)", i, v)
		}
		if v < 0 {
			return 0, fmt.Sprintf("history[%d] is negative (%v): job arrival rates are non-negative", i, v)
		}
	}
	return steps, ""
}

// computeForecast runs the model and applies the degraded last-value
// fallback: a non-finite forecast would (best case) break the client's JSON
// decoding and (worst case) drive scaling decisions from garbage, so the
// naive last-value prediction is served instead, flagged so the auto-scaler
// knows it is flying on instruments. The fallback depends only on the
// history and steps, so degraded results are as cacheable as healthy ones.
func (s *Server) computeForecast(ctx context.Context, model *core.Model, history []float64, steps int) (fleet.CachedForecast, error) {
	forecasts, err := s.predict(ctx, model, history, steps)
	if err != nil {
		return fleet.CachedForecast{}, err
	}
	if !allFinite(forecasts) {
		s.m.degraded.Inc()
		return fleet.CachedForecast{
			Forecasts: lastValueForecast(history, steps),
			Degraded:  true,
			Fallback:  "last-value",
			Reason:    "model emitted non-finite forecast values",
		}, nil
	}
	return fleet.CachedForecast{Forecasts: forecasts}, nil
}

// BatchForecastRequest is the POST /v1/forecast:batch request body: many
// forecasts in one round trip, so an auto-scaler polling a whole fleet pays
// one HTTP exchange instead of N.
type BatchForecastRequest struct {
	Entries []BatchForecastEntry `json:"entries"`
}

// BatchForecastEntry is one (workload, history, steps) forecast request.
type BatchForecastEntry struct {
	Workload string    `json:"workload"`
	History  []float64 `json:"history"`
	Steps    int       `json:"steps"` // 0 or absent: 1 step
}

// resetForDecode prepares a pooled request for decoding. encoding/json
// reuses slice elements within capacity without zeroing them, so every
// entry must be reset up to cap — otherwise a field absent from the next
// request (steps, history, workload) would silently inherit a prior
// request's value, leaking data across clients. Each History keeps its
// backing array (len 0) so decode stays allocation-free in steady state.
func (req *BatchForecastRequest) resetForDecode() {
	es := req.Entries[:cap(req.Entries)]
	for i := range es {
		es[i] = BatchForecastEntry{History: es[i].History[:0]}
	}
	req.Entries = es[:0]
}

// BatchForecastResponse carries one result per request entry, in order.
type BatchForecastResponse struct {
	Results []BatchForecastResult `json:"results"`
}

// BatchForecastResult is one entry's outcome: either Forecasts (with the
// same degraded-fallback semantics as the single endpoint) or Error. A
// batch with failing entries still answers 200 — per-entry validity is the
// entry's business, and partial results are actionable.
type BatchForecastResult struct {
	Workload  string    `json:"workload"`
	Forecasts []float64 `json:"forecasts,omitempty"`
	Degraded  bool      `json:"degraded,omitempty"`
	Fallback  string    `json:"fallback,omitempty"`
	Reason    string    `json:"reason,omitempty"`
	Error     string    `json:"error,omitempty"`
}

// handleForecastBatch serves POST /v1/forecast:batch. Entries are validated
// individually (failures land in the entry's Error field), consulted against
// the forecast cache, and the misses are grouped by model so every group
// runs as ONE fused multi-step batch inference (core.PredictStepsBatch) —
// the per-row results are bit-identical to the single-forecast path, so
// clients may mix both endpoints freely.
func (s *Server) handleForecastBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	// One batch occupies one in-flight slot: shedding bounds concurrent
	// model work, and a batch runs its model passes fused, not per entry.
	if !s.acquireSlot(w) {
		return
	}
	defer s.releaseSlot()

	req := batchReqPool.Get().(*BatchForecastRequest)
	defer batchReqPool.Put(req)
	req.resetForDecode()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err := dec.Decode(req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if len(req.Entries) == 0 {
		httpError(w, http.StatusBadRequest, "entries is required")
		return
	}
	if len(req.Entries) > s.opts.MaxBatch {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("batch exceeds %d entries", s.opts.MaxBatch))
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.opts.RequestTimeout)
	defer cancel()

	type resolved struct {
		model   *core.Model
		version int64
		errMsg  string
	}
	models := make(map[string]resolved, len(req.Entries))
	results := make([]BatchForecastResult, len(req.Entries))
	stepsOf := make([]int, len(req.Entries))
	// groups collects cache-missing entry indices per distinct model.
	groups := make(map[*core.Model][]int)
	for i, e := range req.Entries {
		results[i].Workload = e.Workload
		steps, msg := s.checkForecastInput(e.History, e.Steps)
		if msg != "" {
			results[i].Error = msg
			continue
		}
		stepsOf[i] = steps
		res, seen := models[e.Workload]
		if !seen {
			if err := fleet.ValidateID(e.Workload); err != nil {
				res = resolved{errMsg: err.Error()}
			} else if m, v, err := s.fleet.ModelWithVersion(e.Workload); err != nil {
				res = resolved{errMsg: err.Error()}
			} else {
				res = resolved{model: m, version: v}
			}
			models[e.Workload] = res
		}
		if res.errMsg != "" {
			results[i].Error = res.errMsg
			continue
		}
		if len(e.History) < res.model.HP.HistoryLen {
			results[i].Error = fmt.Sprintf("history has %d values, model needs at least %d",
				len(e.History), res.model.HP.HistoryLen)
			continue
		}
		window := e.History[len(e.History)-res.model.HP.HistoryLen:]
		if cf, ok := s.cache.Get(e.Workload, res.version, window, steps); ok {
			results[i].Forecasts = cf.Forecasts
			results[i].Degraded = cf.Degraded
			results[i].Fallback = cf.Fallback
			results[i].Reason = cf.Reason
			continue
		}
		groups[res.model] = append(groups[res.model], i)
	}

	for model, idxs := range groups {
		histories := make([][]float64, len(idxs))
		steps := make([]int, len(idxs))
		for k, i := range idxs {
			histories[k] = req.Entries[i].History
			steps[k] = stepsOf[i]
		}
		outs, err := s.predictBatch(ctx, model, histories, steps)
		if err != nil {
			// A deadline is recorded per entry like any other model error:
			// failing the whole batch with 504 would discard cache hits and
			// results already computed for other groups, breaking the
			// partial-results contract.
			msg := "model error: " + err.Error()
			if errors.Is(err, context.DeadlineExceeded) {
				msg = "forecast timed out"
			}
			for _, i := range idxs {
				results[i].Error = msg
			}
			continue
		}
		for k, i := range idxs {
			e := req.Entries[i]
			cf := fleet.CachedForecast{Forecasts: outs[k]}
			if !allFinite(outs[k]) {
				s.m.degraded.Inc()
				cf = fleet.CachedForecast{
					Forecasts: lastValueForecast(e.History, stepsOf[i]),
					Degraded:  true,
					Fallback:  "last-value",
					Reason:    "model emitted non-finite forecast values",
				}
			}
			res := models[e.Workload]
			window := e.History[len(e.History)-res.model.HP.HistoryLen:]
			s.cache.Put(e.Workload, res.version, window, stepsOf[i], cf)
			results[i].Forecasts = cf.Forecasts
			results[i].Degraded = cf.Degraded
			results[i].Fallback = cf.Fallback
			results[i].Reason = cf.Reason
		}
	}

	// Every served horizon (cache hits included) feeds the evaluator, same
	// as the single endpoint.
	for i := range results {
		if results[i].Error == "" && len(results[i].Forecasts) > 0 {
			s.fleet.RecordForecast(results[i].Workload, results[i].Forecasts)
		}
	}
	writeJSON(w, http.StatusOK, BatchForecastResponse{Results: results})
}

// ObserveRequest is the observe request body: arrivals observed since the
// last report, oldest first.
type ObserveRequest struct {
	Values []float64 `json:"values"`
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	if err := fleet.ValidateID(id); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	var req ObserveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if len(req.Values) == 0 {
		httpError(w, http.StatusBadRequest, "values is required")
		return
	}
	if len(req.Values) > s.opts.MaxObservations {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("values exceeds %d observations", s.opts.MaxObservations))
		return
	}
	// The minted trace and the request's correlation ID ride into the
	// fleet so the flight recorder can chain this batch's drift verdict
	// and any rebuild it triggers back to this HTTP request.
	st, err := s.fleet.ObserveCtx(id, req.Values, obs.TraceCtx{
		Trace:     requestTrace(r),
		RequestID: w.Header().Get("X-Request-ID"),
	})
	switch {
	case errors.Is(err, fleet.ErrUnknownWorkload):
		httpError(w, http.StatusNotFound, err.Error())
		return
	case err != nil:
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	// When the observation WAL has failed, the write was accepted
	// memory-only: it will not survive a restart. Surface that on the
	// response so a pipeline that needs durability can alert, without
	// failing the ingest itself.
	if s.fleet.DurabilityDegraded() {
		w.Header().Set("X-Durability", "degraded")
	}
	writeJSON(w, http.StatusOK, st)
}

// TimelineResponse is the GET /v1/workloads/{id}/timeline body: the
// workload's flight-recorder events, oldest first. Enabled false means no
// recorder is configured (events always empty then); an enabled recorder
// with no events yet returns an empty list, not an error.
type TimelineResponse struct {
	Workload string            `json:"workload"`
	Enabled  bool              `json:"enabled"`
	Events   []obs.FlightEvent `json:"events"`
}

func (s *Server) handleTimeline(w http.ResponseWriter, r *http.Request, id string) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	if err := fleet.ValidateID(id); err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if _, err := s.fleet.Status(id); err != nil {
		httpError(w, http.StatusNotFound, err.Error())
		return
	}
	events := s.flight.Events(id)
	if events == nil {
		events = []obs.FlightEvent{}
	}
	writeJSON(w, http.StatusOK, TimelineResponse{
		Workload: id,
		Enabled:  s.flight.Enabled(),
		Events:   events,
	})
}

// lastValueForecast is the degraded-mode predictor: the last observed JAR
// repeated over the horizon — the strongest assumption-free forecast when
// the model cannot be trusted.
func lastValueForecast(history []float64, steps int) []float64 {
	last := history[len(history)-1]
	out := make([]float64, steps)
	for i := range out {
		out[i] = last
	}
	return out
}

func allFinite(values []float64) bool {
	for _, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// Request/response buffer pools. encoding/json reuses the capacity of
// slices already present in the destination struct, so recycling request
// structs lets repeated forecast decodes run without growing fresh History
// backing arrays; the response side encodes into a pooled buffer (encoder
// included — it holds internal scratch) instead of allocating an encoder
// per request.
var (
	forecastReqPool = sync.Pool{New: func() any { return new(ForecastRequest) }}
	batchReqPool    = sync.Pool{New: func() any { return new(BatchForecastRequest) }}
	jsonBufPool     = sync.Pool{New: func() any {
		jb := &jsonBuffer{}
		jb.enc = json.NewEncoder(&jb.buf)
		return jb
	}}
)

type jsonBuffer struct {
	buf bytes.Buffer
	enc *json.Encoder
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	jb := jsonBufPool.Get().(*jsonBuffer)
	jb.buf.Reset()
	if err := jb.enc.Encode(v); err != nil {
		// Unreachable for the server's own response types; fall back to
		// streaming so a caller-supplied value still gets a best effort.
		jsonBufPool.Put(jb)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(v)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(jb.buf.Len()))
	w.WriteHeader(status)
	_, _ = w.Write(jb.buf.Bytes())
	jsonBufPool.Put(jb)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
