// Package serve exposes a trained LoadDynamics model as an HTTP forecast
// service — the integration point an auto-scaler polls each interval. The
// handlers are stdlib net/http only.
//
// Endpoints:
//
//	GET  /healthz      liveness probe
//	GET  /v1/model     model metadata (hyperparameters, validation error)
//	POST /v1/forecast  {"history": [...], "steps": n} → {"forecasts": [...]}
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"

	"loaddynamics/internal/core"
)

// MaxHistoryLen bounds request payloads (DoS hygiene).
const MaxHistoryLen = 100_000

// MaxSteps bounds the iterated forecast horizon per request.
const MaxSteps = 1000

// Server wraps a trained model with HTTP handlers.
type Server struct {
	model *core.Model
	mux   *http.ServeMux
}

// New returns a server for the given trained model.
func New(model *core.Model) (*Server, error) {
	if model == nil {
		return nil, fmt.Errorf("serve: nil model")
	}
	s := &Server{model: model, mux: http.NewServeMux()}
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/v1/model", s.handleModel)
	s.mux.HandleFunc("/v1/forecast", s.handleForecast)
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// ModelInfo is the /v1/model response body.
type ModelInfo struct {
	Hyperparams struct {
		HistoryLen int `json:"history_len"`
		CellSize   int `json:"cell_size"`
		Layers     int `json:"layers"`
		BatchSize  int `json:"batch_size"`
	} `json:"hyperparams"`
	ValidationMAPE float64 `json:"validation_mape"`
	NumWeights     int     `json:"num_weights"`
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	var info ModelInfo
	info.Hyperparams.HistoryLen = s.model.HP.HistoryLen
	info.Hyperparams.CellSize = s.model.HP.CellSize
	info.Hyperparams.Layers = s.model.HP.Layers
	info.Hyperparams.BatchSize = s.model.HP.BatchSize
	info.ValidationMAPE = s.model.ValError
	info.NumWeights = s.model.NumParams()
	writeJSON(w, http.StatusOK, info)
}

// ForecastRequest is the /v1/forecast request body. History must contain at
// least the model's history length of recent JARs (oldest first).
type ForecastRequest struct {
	History []float64 `json:"history"`
	Steps   int       `json:"steps"` // 0 or absent: 1 step
}

// ForecastResponse is the /v1/forecast response body.
type ForecastResponse struct {
	Forecasts []float64 `json:"forecasts"`
}

func (s *Server) handleForecast(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req ForecastRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
		return
	}
	if req.Steps == 0 {
		req.Steps = 1
	}
	if req.Steps < 0 || req.Steps > MaxSteps {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("steps must be 1..%d", MaxSteps))
		return
	}
	if len(req.History) == 0 {
		httpError(w, http.StatusBadRequest, "history is required")
		return
	}
	if len(req.History) > MaxHistoryLen {
		httpError(w, http.StatusBadRequest, fmt.Sprintf("history exceeds %d values", MaxHistoryLen))
		return
	}
	if len(req.History) < s.model.HP.HistoryLen {
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("history has %d values, model needs at least %d", len(req.History), s.model.HP.HistoryLen))
		return
	}
	forecasts, err := s.model.PredictSteps(req.History, req.Steps)
	if err != nil {
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, ForecastResponse{Forecasts: forecasts})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": msg})
}
