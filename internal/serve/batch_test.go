package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"loaddynamics/internal/core"
	"loaddynamics/internal/fleet"
	"loaddynamics/internal/obs"
)

func postBatch(t *testing.T, url string, req BatchForecastRequest) (*http.Response, BatchForecastResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/forecast:batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out BatchForecastResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
	}
	return resp, out
}

// TestBatchMatchesSingleForecasts is the golden parity check: every result
// row of /v1/forecast:batch must be bit-identical to the same (history,
// steps) posted to the single endpoint, so clients can mix both freely.
func TestBatchMatchesSingleForecasts(t *testing.T) {
	ts, _, _, series := newTestServerOpts(t, Options{})
	entries := []BatchForecastEntry{
		{Workload: "default", History: series[:50], Steps: 1},
		{Workload: "default", History: series[10:90], Steps: 4},
		{Workload: "default", History: series, Steps: 7},
		{Workload: "default", History: series[:13], Steps: 2},
	}
	resp, out := postBatch(t, ts.URL, BatchForecastRequest{Entries: entries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if len(out.Results) != len(entries) {
		t.Fatalf("got %d results, want %d", len(out.Results), len(entries))
	}
	for i, e := range entries {
		r := out.Results[i]
		if r.Error != "" {
			t.Fatalf("entry %d errored: %s", i, r.Error)
		}
		sresp, single := postForecast(t, ts.URL, ForecastRequest{History: e.History, Steps: e.Steps})
		if sresp.StatusCode != http.StatusOK {
			t.Fatalf("single status %d for entry %d", sresp.StatusCode, i)
		}
		if len(r.Forecasts) != len(single.Forecasts) {
			t.Fatalf("entry %d: %d forecasts vs %d single", i, len(r.Forecasts), len(single.Forecasts))
		}
		for k := range r.Forecasts {
			if math.Float64bits(r.Forecasts[k]) != math.Float64bits(single.Forecasts[k]) {
				t.Fatalf("entry %d step %d: batch %v != single %v (not bit-identical)",
					i, k, r.Forecasts[k], single.Forecasts[k])
			}
		}
	}
}

// TestBatchPerEntryErrors checks that invalid entries fail individually with
// the single endpoint's wording while valid neighbors still get forecasts.
func TestBatchPerEntryErrors(t *testing.T) {
	ts, _, m, series := newTestServerOpts(t, Options{})
	entries := []BatchForecastEntry{
		{Workload: "default", History: series[:40], Steps: 2},
		{Workload: "default", History: series[:40], Steps: -1},
		{Workload: "default", History: nil, Steps: 1},
		{Workload: "default", History: series[:m.HP.HistoryLen-1], Steps: 1},
		{Workload: "nope", History: series[:40], Steps: 1},
		{Workload: "bad id!", History: series[:40], Steps: 1},
	}
	resp, out := postBatch(t, ts.URL, BatchForecastRequest{Entries: entries})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with bad entries should still answer 200, got %d", resp.StatusCode)
	}
	if out.Results[0].Error != "" || len(out.Results[0].Forecasts) != 2 {
		t.Fatalf("valid entry failed: %+v", out.Results[0])
	}
	wantErr := []struct {
		idx int
		sub string
	}{
		{1, fmt.Sprintf("steps must be 1..%d", MaxSteps)},
		{2, "history is required"},
		{3, fmt.Sprintf("model needs at least %d", m.HP.HistoryLen)},
		{4, "unknown workload"},
		{5, "workload id"},
	}
	for _, w := range wantErr {
		r := out.Results[w.idx]
		if r.Error == "" || len(r.Forecasts) != 0 {
			t.Fatalf("entry %d should have errored, got %+v", w.idx, r)
		}
		if !strings.Contains(r.Error, w.sub) {
			t.Fatalf("entry %d error %q does not mention %q", w.idx, r.Error, w.sub)
		}
	}
}

// TestBatchPooledRequestNoCarryOver guards against cross-request data
// leakage through the request pool: encoding/json reuses slice elements
// within capacity without zeroing them, so a pooled BatchForecastRequest
// that is not reset up to cap would let an entry omitting "steps",
// "history", or "workload" inherit a prior request's values.
func TestBatchPooledRequestNoCarryOver(t *testing.T) {
	// Deterministic core: decode into a dirty pooled struct after reset.
	req := &BatchForecastRequest{Entries: []BatchForecastEntry{
		{Workload: "victim", History: []float64{1, 2, 3}, Steps: 7},
		{Workload: "victim2", History: []float64{4, 5, 6}, Steps: 9},
	}}
	req.resetForDecode()
	payload := []byte(`{"entries":[{"workload":"a"},{"history":[8]}]}`)
	if err := json.Unmarshal(payload, req); err != nil {
		t.Fatal(err)
	}
	if len(req.Entries) != 2 {
		t.Fatalf("decoded %d entries, want 2", len(req.Entries))
	}
	if e := req.Entries[0]; e.Workload != "a" || len(e.History) != 0 || e.Steps != 0 {
		t.Fatalf("entry 0 inherited stale fields: %+v", e)
	}
	if e := req.Entries[1]; e.Workload != "" || e.Steps != 0 || len(e.History) != 1 || e.History[0] != 8 {
		t.Fatalf("entry 1 inherited stale fields: %+v", e)
	}

	// End-to-end: poison the pool with a previous client's request, then
	// post an entry that omits steps. If the handler failed to reset the
	// pooled struct it would serve 7 forecast steps instead of 1.
	ts, _, _, series := newTestServerOpts(t, Options{})
	batchReqPool.Put(&BatchForecastRequest{Entries: []BatchForecastEntry{
		{Workload: "default", History: append([]float64(nil), series[:40]...), Steps: 7},
	}})
	resp, out := postBatch(t, ts.URL, BatchForecastRequest{Entries: []BatchForecastEntry{
		{Workload: "default", History: series[:40]},
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if r := out.Results[0]; r.Error != "" || len(r.Forecasts) != 1 {
		t.Fatalf("entry omitting steps got %d forecasts (want 1): %+v", len(r.Forecasts), r)
	}
}

// TestBatchTimeoutIsPerEntry checks that a DeadlineExceeded from one model
// group does not fail the whole batch: cache hits and other groups' results
// are kept, and the timed-out entries carry a per-entry error, matching the
// documented partial-results contract.
func TestBatchTimeoutIsPerEntry(t *testing.T) {
	ts, srv, _, series := newTestServerOpts(t, Options{ForecastCacheTTL: time.Minute})
	// Warm the cache for one window through the single endpoint.
	warm := ForecastRequest{History: series[:40], Steps: 2}
	if resp, _ := postForecast(t, ts.URL, warm); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm status %d", resp.StatusCode)
	}
	// Every subsequent model pass times out.
	srv.predictBatch = func(ctx context.Context, _ *core.Model, _ [][]float64, _ []int) ([][]float64, error) {
		return nil, context.DeadlineExceeded
	}
	resp, out := postBatch(t, ts.URL, BatchForecastRequest{Entries: []BatchForecastEntry{
		{Workload: "default", History: series[:40], Steps: 2},   // cache hit
		{Workload: "default", History: series[10:90], Steps: 1}, // miss → timeout
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch with a timed-out group should still answer 200, got %d", resp.StatusCode)
	}
	if r := out.Results[0]; r.Error != "" || len(r.Forecasts) != 2 {
		t.Fatalf("cached entry was discarded: %+v", r)
	}
	if r := out.Results[1]; r.Error != "forecast timed out" || len(r.Forecasts) != 0 {
		t.Fatalf("timed-out entry = %+v, want per-entry 'forecast timed out'", r)
	}
}

func TestBatchFraming(t *testing.T) {
	ts, _, _, series := newTestServerOpts(t, Options{MaxBatch: 2})
	// Wrong method.
	resp, err := http.Get(ts.URL + "/v1/forecast:batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET status %d", resp.StatusCode)
	}
	// Invalid JSON.
	resp, err = http.Post(ts.URL+"/v1/forecast:batch", "application/json", bytes.NewReader([]byte("{")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid JSON status %d", resp.StatusCode)
	}
	// Empty batch.
	resp, _ = postBatch(t, ts.URL, BatchForecastRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status %d", resp.StatusCode)
	}
	// Over MaxBatch.
	e := BatchForecastEntry{Workload: "default", History: series[:40], Steps: 1}
	resp, _ = postBatch(t, ts.URL, BatchForecastRequest{Entries: []BatchForecastEntry{e, e, e}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch status %d", resp.StatusCode)
	}
}

// TestForecastCacheHitsAndInvalidation drives the cache end to end through
// the HTTP surface: a repeated request hits without recomputing, the batch
// endpoint shares the same entries, and a promotion both invalidates and —
// via the version key — makes serving the old model's forecasts impossible.
func TestForecastCacheHitsAndInvalidation(t *testing.T) {
	ts, srv, m, series := newTestServerOpts(t, Options{ForecastCacheTTL: time.Minute})
	var computes atomic.Int64
	var marks sync.Map // *core.Model → forecast value
	marks.Store(m, 1.0)
	markOf := func(mm *core.Model) float64 {
		v, ok := marks.Load(mm)
		if !ok {
			t.Error("predict called with unknown model")
			return -1
		}
		return v.(float64)
	}
	srv.predict = func(_ context.Context, mm *core.Model, _ []float64, steps int) ([]float64, error) {
		computes.Add(1)
		out := make([]float64, steps)
		for i := range out {
			out[i] = markOf(mm)
		}
		return out, nil
	}
	srv.predictBatch = func(_ context.Context, mm *core.Model, histories [][]float64, steps []int) ([][]float64, error) {
		out := make([][]float64, len(histories))
		for i := range histories {
			computes.Add(1)
			out[i] = make([]float64, steps[i])
			for k := range out[i] {
				out[i][k] = markOf(mm)
			}
		}
		return out, nil
	}

	req := ForecastRequest{History: series[:40], Steps: 3}
	resp1, out1 := postForecast(t, ts.URL, req)
	if resp1.StatusCode != http.StatusOK || resp1.Header.Get("X-Forecast-Cache") != "miss" {
		t.Fatalf("first request: status %d cache %q", resp1.StatusCode, resp1.Header.Get("X-Forecast-Cache"))
	}
	resp2, out2 := postForecast(t, ts.URL, req)
	if resp2.Header.Get("X-Forecast-Cache") != "hit" {
		t.Fatalf("second request cache header %q, want hit", resp2.Header.Get("X-Forecast-Cache"))
	}
	if computes.Load() != 1 {
		t.Fatalf("computes = %d after identical requests, want 1", computes.Load())
	}
	for i := range out1.Forecasts {
		if math.Float64bits(out1.Forecasts[i]) != math.Float64bits(out2.Forecasts[i]) {
			t.Fatalf("cached forecast differs at %d: %v vs %v", i, out1.Forecasts[i], out2.Forecasts[i])
		}
	}
	// A longer history with the same trailing window still hits: the key is
	// the model's input window, not the raw payload.
	respLong, _ := postForecast(t, ts.URL, ForecastRequest{History: append(append([]float64(nil), 9999), series[:40]...), Steps: 3})
	if respLong.Header.Get("X-Forecast-Cache") != "hit" {
		t.Fatalf("same-window request cache header %q, want hit", respLong.Header.Get("X-Forecast-Cache"))
	}
	// The batch endpoint reads the same cache.
	_, bout := postBatch(t, ts.URL, BatchForecastRequest{Entries: []BatchForecastEntry{
		{Workload: "default", History: series[:40], Steps: 3},
	}})
	if bout.Results[0].Error != "" || bout.Results[0].Forecasts[0] != 1.0 {
		t.Fatalf("batch cache read: %+v", bout.Results[0])
	}
	if computes.Load() != 1 {
		t.Fatalf("computes = %d after batch hit, want 1", computes.Load())
	}

	// Promote a new model: the cached forecasts for the old version must
	// never be served again.
	m2 := &core.Model{HP: m.HP, ValError: m.ValError}
	marks.Store(m2, 2.0)
	if err := srv.Fleet().Promote("default", m2); err != nil {
		t.Fatal(err)
	}
	resp4, out4 := postForecast(t, ts.URL, req)
	if resp4.Header.Get("X-Forecast-Cache") != "miss" {
		t.Fatalf("post-promotion cache header %q, want miss", resp4.Header.Get("X-Forecast-Cache"))
	}
	if out4.Forecasts[0] != 2.0 {
		t.Fatalf("post-promotion forecast %v came from the old model", out4.Forecasts[0])
	}
	if computes.Load() != 2 {
		t.Fatalf("computes = %d after promotion, want 2", computes.Load())
	}
}

// TestConcurrentBatchCachePromotion is the -race workout: single and batch
// forecasts race against promotions and observations with the cache enabled,
// and every response must reflect a model at least as new as the last
// promotion that completed before the request was issued — a stale cached
// forecast surfacing after a promotion fails the test.
func TestConcurrentBatchCachePromotion(t *testing.T) {
	discard := slog.New(slog.DiscardHandler)
	reg := obs.NewRegistry()
	fl, err := fleet.Open(fleet.Options{Metrics: reg, Logger: discard})
	if err != nil {
		t.Fatal(err)
	}
	hp := core.Hyperparams{HistoryLen: 4, CellSize: 2, Layers: 1, BatchSize: 8}
	var marks sync.Map // *core.Model → generation
	m1 := &core.Model{HP: hp, ValError: 1}
	other := &core.Model{HP: hp, ValError: 1}
	marks.Store(m1, 1.0)
	marks.Store(other, 1.0)
	if err := fl.Add("default", m1); err != nil {
		t.Fatal(err)
	}
	if err := fl.Add("other", other); err != nil {
		t.Fatal(err)
	}
	srv, err := NewFleet(fl, Options{Metrics: reg, Logger: discard, ForecastCacheTTL: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	markOf := func(mm *core.Model) float64 {
		v, _ := marks.Load(mm)
		return v.(float64)
	}
	srv.predict = func(_ context.Context, mm *core.Model, _ []float64, steps int) ([]float64, error) {
		out := make([]float64, steps)
		for i := range out {
			out[i] = markOf(mm)
		}
		return out, nil
	}
	srv.predictBatch = func(_ context.Context, mm *core.Model, histories [][]float64, steps []int) ([][]float64, error) {
		out := make([][]float64, len(histories))
		for i := range histories {
			out[i] = make([]float64, steps[i])
			for k := range out[i] {
				out[i][k] = markOf(mm)
			}
		}
		return out, nil
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	windows := [][]float64{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
		{2, 2, 2, 2},
	}
	var promoted atomic.Int64 // highest generation whose promotion has completed
	promoted.Store(1)
	done := make(chan struct{})
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // promoter
		defer wg.Done()
		defer close(done)
		for gen := 2; gen <= 25; gen++ {
			nm := &core.Model{HP: hp, ValError: 1}
			marks.Store(nm, float64(gen))
			if err := fl.Promote("default", nm); err != nil {
				t.Error(err)
				return
			}
			promoted.Store(int64(gen))
			time.Sleep(time.Millisecond)
		}
	}()

	checkFresh := func(got float64, lo int64, via string) {
		if got < float64(lo) {
			t.Errorf("%s served generation %v after generation %d was fully promoted (stale cache entry)", via, got, lo)
		}
	}
	for g := 0; g < 3; g++ {
		wg.Add(1)
		go func(g int) { // single-forecast clients
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				lo := promoted.Load()
				_, out := postForecast(t, ts.URL, ForecastRequest{History: windows[i%len(windows)], Steps: 2})
				if len(out.Forecasts) == 2 {
					checkFresh(out.Forecasts[0], lo, "single")
				}
			}
		}(g)
		wg.Add(1)
		go func(g int) { // batch clients mixing both workloads
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				lo := promoted.Load()
				_, out := postBatch(t, ts.URL, BatchForecastRequest{Entries: []BatchForecastEntry{
					{Workload: "default", History: windows[i%len(windows)], Steps: 2},
					{Workload: "other", History: windows[(i+1)%len(windows)], Steps: 1},
					{Workload: "default", History: windows[(i+2)%len(windows)], Steps: 3},
				}})
				for k, r := range out.Results {
					if r.Error != "" || len(r.Forecasts) == 0 {
						continue
					}
					if r.Workload == "other" {
						if r.Forecasts[0] != 1.0 {
							t.Errorf("workload other got generation %v, was never promoted", r.Forecasts[0])
						}
						continue
					}
					checkFresh(r.Forecasts[0], lo, fmt.Sprintf("batch[%d]", k))
				}
			}
		}(g)
	}
	wg.Add(1)
	go func() { // observer exercising the evaluator against racing forecasts
		defer wg.Done()
		body := []byte(`{"values":[3,4,5]}`)
		for {
			select {
			case <-done:
				return
			default:
			}
			resp, err := http.Post(ts.URL+"/v1/workloads/default/observe", "application/json", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			resp.Body.Close()
		}
	}()
	wg.Wait()
}
