package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"loaddynamics/internal/core"
	"loaddynamics/internal/fleet"
	"loaddynamics/internal/nn"
	"loaddynamics/internal/obs"
	"loaddynamics/internal/wal"
	"loaddynamics/internal/wal/faultfs"
)

// fleetSeries is a small deterministic JAR series around level 100.
func fleetSeries(seed int64, n int) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = 100 + 30*math.Sin(2*math.Pi*float64(i)/12) + rng.NormFloat64()
	}
	return out
}

// fleetModel trains a milliseconds-scale LSTM.
func fleetModel(t testing.TB, seed int64) *core.Model {
	t.Helper()
	series := fleetSeries(seed, 80)
	tc := nn.DefaultTrainConfig()
	tc.Epochs = 2
	tc.Patience = 0
	m, err := core.TrainSingle(core.Config{Seed: seed, Train: tc},
		series[:60], series[60:], core.Hyperparams{HistoryLen: 4, CellSize: 2, Layers: 1, BatchSize: 8})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// newFleetServer builds a 3-workload fleet server on a private registry.
func newFleetServer(t *testing.T, fopts fleet.Options, sopts Options) (*httptest.Server, *Server, *fleet.Fleet) {
	t.Helper()
	reg := obs.NewRegistry()
	fopts.Metrics = reg
	sopts.Metrics = reg
	fl, err := fleet.Open(fopts)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range []string{"gl-30m", "wiki-5m", "az-1h"} {
		if err := fl.Add(id, fleetModel(t, int64(i+1))); err != nil {
			t.Fatal(err)
		}
	}
	s, err := NewFleet(fl, sopts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return ts, s, fl
}

func postJSON(t *testing.T, url string, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func TestNewFleetValidation(t *testing.T) {
	if _, err := NewFleet(nil, Options{}); err == nil {
		t.Fatal("nil fleet accepted")
	}
	empty, _ := fleet.Open(fleet.Options{Metrics: obs.NewRegistry()})
	if _, err := NewFleet(empty, Options{Metrics: obs.NewRegistry()}); err == nil {
		t.Fatal("empty fleet accepted")
	}
	fl, _ := fleet.Open(fleet.Options{Metrics: obs.NewRegistry()})
	if err := fl.Add("only", fleetModel(t, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := NewFleet(fl, Options{DefaultWorkload: "nope", Metrics: obs.NewRegistry()}); err == nil {
		t.Fatal("missing default workload accepted")
	}
	s, err := NewFleet(fl, Options{Metrics: obs.NewRegistry()})
	if err != nil {
		t.Fatal(err)
	}
	// With no "default" workload the alias routes fall back to the first ID.
	if s.defaultID != "only" {
		t.Fatalf("defaultID = %q, want %q", s.defaultID, "only")
	}
}

func TestWorkloadRouting(t *testing.T) {
	ts, _, fl := newFleetServer(t, fleet.Options{}, Options{})

	// Per-workload forecast serves each workload's own model.
	hist := fleetSeries(9, 24)
	body, _ := json.Marshal(ForecastRequest{History: hist, Steps: 3})
	for _, id := range fl.IDs() {
		resp := postJSON(t, ts.URL+"/v1/workloads/"+id+"/forecast", string(body))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("forecast %s status %d", id, resp.StatusCode)
		}
		out := decodeBody[ForecastResponse](t, resp)
		if len(out.Forecasts) != 3 {
			t.Fatalf("forecast %s returned %d steps", id, len(out.Forecasts))
		}
	}

	// The workload model endpoint includes fleet health.
	resp, err := http.Get(ts.URL + "/v1/workloads/gl-30m/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	info := decodeBody[WorkloadModelInfo](t, resp)
	if info.Workload.ID != "gl-30m" || !info.Workload.Resident || info.NumWeights == 0 {
		t.Fatalf("workload model info = %+v", info)
	}

	// The list endpoint reports all workloads plus the alias default.
	resp, err = http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	list := decodeBody[struct {
		Default   string                 `json:"default"`
		Workloads []fleet.WorkloadStatus `json:"workloads"`
	}](t, resp)
	if len(list.Workloads) != 3 || list.Default != "az-1h" { // first sorted ID
		t.Fatalf("workloads list = %+v", list)
	}

	// Unknown workloads 404; invalid IDs 400.
	if resp := postJSON(t, ts.URL+"/v1/workloads/nope/forecast", string(body)); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload forecast status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/workloads/.bad/observe", `{"values":[1]}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid workload observe status %d", resp.StatusCode)
	}
}

func TestAliasRoutesServeDefaultWorkload(t *testing.T) {
	ts, s, fl := newFleetServer(t, fleet.Options{}, Options{DefaultWorkload: "wiki-5m"})
	if s.defaultID != "wiki-5m" {
		t.Fatalf("defaultID = %q", s.defaultID)
	}
	want, _ := fl.Model("wiki-5m")
	resp, err := http.Get(ts.URL + "/v1/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	info := decodeBody[WorkloadModelInfo](t, resp)
	if info.Workload.ID != "wiki-5m" || info.ValidationMAPE != want.ValError {
		t.Fatalf("alias model info = %+v", info)
	}
	// The alias forecast records into the default workload's evaluator.
	hist := fleetSeries(9, 24)
	body, _ := json.Marshal(ForecastRequest{History: hist, Steps: 2})
	if resp := postJSON(t, ts.URL+"/v1/forecast", string(body)); resp.StatusCode != http.StatusOK {
		t.Fatalf("alias forecast status %d", resp.StatusCode)
	}
	obsResp := postJSON(t, ts.URL+"/v1/workloads/wiki-5m/observe", `{"values":[100,100]}`)
	st := decodeBody[fleet.Status](t, obsResp)
	if st.Scored != 2 {
		t.Fatalf("alias forecast not recorded for default workload: %+v", st)
	}
}

func TestObserveEndpointValidation(t *testing.T) {
	ts, _, _ := newFleetServer(t, fleet.Options{}, Options{MaxObservations: 4, MaxBodyBytes: 256})
	url := ts.URL + "/v1/workloads/gl-30m/observe"

	if resp, err := http.Get(url); err != nil {
		t.Fatal(err)
	} else if resp.Body.Close(); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET observe status %d", resp.StatusCode)
	}
	for body, want := range map[string]int{
		`{"values":[1,2,3]}`:     http.StatusOK,
		`{"values":[]}`:          http.StatusBadRequest,
		`{}`:                     http.StatusBadRequest,
		`{"values":[1,2,3,4,5]}`: http.StatusBadRequest, // over MaxObservations
		`{"values":[1,-2]}`:      http.StatusBadRequest,
		`{"values":["x"]}`:       http.StatusBadRequest,
		`not json`:               http.StatusBadRequest,
		`{"values":[` + strings.Repeat("1,", 200) + `1]}`: http.StatusBadRequest, // over MaxBodyBytes
	} {
		resp := postJSON(t, url, body)
		if resp.StatusCode != want {
			t.Errorf("observe %q status %d, want %d", body, resp.StatusCode, want)
		}
		var decoded map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&decoded); err != nil {
			t.Errorf("observe %q: non-JSON response: %v", body, err)
		}
	}
}

func TestForecastHistoryCapConfigurable(t *testing.T) {
	ts, _, _ := newFleetServer(t, fleet.Options{}, Options{MaxHistory: 16})
	body, _ := json.Marshal(ForecastRequest{History: fleetSeries(1, 17), Steps: 1})
	resp := postJSON(t, ts.URL+"/v1/workloads/gl-30m/forecast", string(body))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized history status %d, want 400", resp.StatusCode)
	}
	e := decodeBody[map[string]string](t, resp)
	if !strings.Contains(e["error"], "16") {
		t.Fatalf("error %q does not mention the cap", e["error"])
	}
}

func TestRouteLabelClassification(t *testing.T) {
	for path, want := range map[string]string{
		"/healthz":                      "healthz",
		"/v1/model":                     "model",
		"/v1/forecast":                  "forecast",
		"/v1/reload":                    "reload",
		"/v1/workloads":                 "workloads",
		"/v1/workloads/gl-30m/forecast": "workload_forecast",
		"/v1/workloads/gl-30m/observe":  "workload_observe",
		"/v1/workloads/gl-30m/model":    "workload_model",
		"/v1/workloads/gl-30m/junk":     "other",
		"/v1/workloads/":                "other",
		"/junk":                         "other",
	} {
		if got := routeLabel(path); got != want {
			t.Errorf("routeLabel(%q) = %q, want %q", path, got, want)
		}
	}
}

// TestFleetDriftRebuildPromotionE2E is the PR's acceptance test: three
// workloads serve concurrent forecasts while one of them receives a
// distribution shift through the public API. The shifted workload must
// drift, rebuild in the background (a real core.Build on its observed
// history) and atomically promote the better model — without ever
// interrupting the other workloads — all verified through /debug/metrics.
func TestFleetDriftRebuildPromotionE2E(t *testing.T) {
	tc := nn.DefaultTrainConfig()
	tc.Epochs = 2
	tc.Patience = 0
	fopts := fleet.Options{
		Window:            8,
		MinSamples:        4,
		DriftThreshold:    50,
		HistoryCap:        256,
		MinRebuildHistory: 32,
		RebuildQueue:      8,
		RebuildBudget:     time.Minute,
		Build: core.Config{
			Space:      core.ScaledSpace(4, 2, 1, 8),
			MaxIters:   2,
			InitPoints: 2,
			Seed:       7,
			Train:      tc,
			Scaler:     "minmax",
			Parallel:   1,
		},
	}
	ts, s, fl := newFleetServer(t, fopts, Options{})
	// Force a deterministic promotion: the incumbent cannot win. Promote
	// re-caches the fleet's stored CV error for the workload.
	shifted, _ := fl.Model("gl-30m")
	shifted.ValError = 1e9
	if err := fl.Promote("gl-30m", shifted); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fl.Start(ctx)
	defer fl.Close()

	admin := httptest.NewServer(s.Admin(false))
	defer admin.Close()
	counters := func() map[string]int64 {
		resp, err := http.Get(admin.URL + "/debug/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return decodeBody[obs.Snapshot](t, resp).Counters
	}

	// Background load: the healthy workloads keep forecasting throughout.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errs := make(chan error, 2)
	hist := fleetSeries(9, 24)
	fbody, _ := json.Marshal(ForecastRequest{History: hist, Steps: 2})
	for _, id := range []string{"wiki-5m", "az-1h"} {
		id := id
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/workloads/"+id+"/forecast", "application/json", bytes.NewReader(fbody))
				if err != nil {
					errs <- err
					return
				}
				code := resp.StatusCode
				resp.Body.Close()
				if code != http.StatusOK {
					errs <- fmt.Errorf("workload %s forecast status %d during rebuild", id, code)
					return
				}
			}
		}()
	}

	// Inject the shift through the public API: seed rebuild history, then
	// score wildly-off served forecasts.
	seed, _ := json.Marshal(map[string][]float64{"values": fleetSeries(5, 64)})
	if resp := postJSON(t, ts.URL+"/v1/workloads/gl-30m/observe", string(seed)); resp.StatusCode != http.StatusOK {
		t.Fatalf("seeding observe status %d", resp.StatusCode)
	}
	if resp := postJSON(t, ts.URL+"/v1/workloads/gl-30m/forecast", string(fbody)); resp.StatusCode != http.StatusOK {
		t.Fatalf("shifted forecast status %d", resp.StatusCode)
	}
	// Two pending forecast steps exist; two more forecasts keep refreshing
	// the horizon so four observations all score.
	obsResp := postJSON(t, ts.URL+"/v1/workloads/gl-30m/observe", `{"values":[1000,1000]}`)
	if st := decodeBody[fleet.Status](t, obsResp); st.Scored != 2 {
		t.Fatalf("first shifted observe %+v", st)
	}
	if resp := postJSON(t, ts.URL+"/v1/workloads/gl-30m/forecast", string(fbody)); resp.StatusCode != http.StatusOK {
		t.Fatal("second forecast failed")
	}
	obsResp = postJSON(t, ts.URL+"/v1/workloads/gl-30m/observe", `{"values":[1000,1000]}`)
	st := decodeBody[fleet.Status](t, obsResp)
	if !st.Drift || !st.RebuildQueued {
		t.Fatalf("shifted workload status %+v, want drift + queued rebuild", st)
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		c := counters()
		if c["fleet.rebuilds.ok"] >= 1 && c["fleet.promotions"] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebuild did not complete; counters %v", c)
		}
		select {
		case err := <-errs:
			t.Fatal(err)
		case <-time.After(20 * time.Millisecond):
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// The promoted model serves over HTTP with a sane CV error.
	resp, err := http.Get(ts.URL + "/v1/workloads/gl-30m/model")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	info := decodeBody[WorkloadModelInfo](t, resp)
	if info.ValidationMAPE >= 1e9 {
		t.Fatalf("shifted workload still serves the stale model: %+v", info)
	}
	if info.Workload.Drift {
		t.Fatalf("drift flag not cleared after promotion: %+v", info.Workload)
	}
	c := counters()
	if c["fleet.drift"] < 1 {
		t.Fatalf("drift transition not counted: %v", c)
	}
}

func TestObserveSignalsDegradedDurability(t *testing.T) {
	ffs := faultfs.New(nil)
	ts, _, fl := newFleetServer(t,
		fleet.Options{WAL: wal.Options{Dir: t.TempDir(), FS: ffs}}, Options{})

	workloadsDurability := func() string {
		t.Helper()
		resp, err := http.Get(ts.URL + "/v1/workloads")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out struct {
			Durability string `json:"durability"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out.Durability
	}

	// Healthy WAL: no degraded header, workloads report ok.
	resp := postJSON(t, ts.URL+"/v1/workloads/gl-30m/observe", `{"values": [100, 101]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe status %d, want 200", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Durability"); h != "" {
		t.Fatalf("healthy observe carries X-Durability %q", h)
	}
	if d := workloadsDurability(); d != "ok" {
		t.Fatalf("healthy durability = %q, want ok", d)
	}

	// Break the disk under the WAL. Ingest must still succeed — the
	// fleet degrades to memory-only — but the response now carries the
	// degraded-durability signal for pipelines that need to alert.
	ffs.FailWrites(0, 0)
	resp = postJSON(t, ts.URL+"/v1/workloads/gl-30m/observe", `{"values": [102, 103]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("degraded observe status %d, want 200", resp.StatusCode)
	}
	if h := resp.Header.Get("X-Durability"); h != "degraded" {
		t.Fatalf("degraded observe X-Durability = %q, want degraded", h)
	}
	if !fl.DurabilityDegraded() {
		t.Fatal("fleet does not report degraded durability")
	}
	if d := workloadsDurability(); d != "degraded" {
		t.Fatalf("durability = %q, want degraded", d)
	}
}
