package serve

import (
	"net/http"
	"testing"

	"loaddynamics/internal/fleet"
	"loaddynamics/internal/profile"
)

// TestWorkloadStatusEndpoint covers GET /v1/workloads/{id}: the fleet
// health view plus the transfer-learning profile (fingerprint and
// warm-start provenance), 404 for unknown workloads, 405 for non-GET.
func TestWorkloadStatusEndpoint(t *testing.T) {
	ts, s, _ := newFleetServer(t, fleet.Options{}, Options{})

	// Give the workload some observed history so the fingerprint is live.
	if resp := postJSON(t, ts.URL+"/v1/workloads/gl-30m/observe", `{"values":[100,130,95,70,100,131,96,71]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("observe status %d", resp.StatusCode)
	}

	resp, err := http.Get(ts.URL + "/v1/workloads/gl-30m")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	body := decodeBody[WorkloadStatusResponse](t, resp)
	if body.Workload.ID != "gl-30m" || body.Profile.ID != "gl-30m" {
		t.Fatalf("wrong workload in response: %+v", body)
	}
	if len(body.Profile.Fingerprint) != profile.FeatureDim {
		t.Fatalf("fingerprint has %d features, want %d", len(body.Profile.Fingerprint), profile.FeatureDim)
	}
	if _, ok := body.Profile.Features["season_strength"]; !ok {
		t.Fatalf("named features missing: %+v", body.Profile.Features)
	}
	if !body.Profile.WarmStart.Cold() {
		t.Fatalf("never-rebuilt workload reports warm provenance: %+v", body.Profile.WarmStart)
	}

	if resp, err := http.Get(ts.URL + "/v1/workloads/nope"); err != nil || resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload: err=%v status=%d, want 404", err, resp.StatusCode)
	} else {
		resp.Body.Close()
	}
	if resp := postJSON(t, ts.URL+"/v1/workloads/gl-30m", `{}`); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST status %d, want 405", resp.StatusCode)
	}

	if got := routeLabel("/v1/workloads/gl-30m"); got != "workload_status" {
		t.Fatalf("routeLabel = %q, want workload_status", got)
	}
	if v := s.m.reg.Counter("serve.requests.workload_status").Value(); v == 0 {
		t.Fatal("workload_status requests not counted")
	}
}
