// Fleet-under-fire suite: an in-process loadgen drives the streaming
// ingest stack end to end — HTTP handler, sharded evaluator queues,
// batched WAL — across a 1000-workload fleet, proving zero silent drops,
// crash-cut WAL replay parity, and the stream path's throughput edge
// over single-POST observe. Lives in the external test package because
// loadgen itself imports serve.
package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"loaddynamics/internal/core"
	"loaddynamics/internal/fleet"
	"loaddynamics/internal/loadgen"
	"loaddynamics/internal/nn"
	"loaddynamics/internal/obs"
	"loaddynamics/internal/serve"
	"loaddynamics/internal/wal"
)

// soakModel trains one milliseconds-scale model shared by every workload
// in the fire fleet — the suite exercises ingest, not training.
var soakModel = sync.OnceValue(func() *core.Model {
	rng := rand.New(rand.NewSource(3))
	series := make([]float64, 80)
	for i := range series {
		series[i] = 100 + 30*math.Sin(2*math.Pi*float64(i)/12) + rng.NormFloat64()
	}
	tc := nn.DefaultTrainConfig()
	tc.Epochs = 2
	tc.Patience = 0
	m, err := core.TrainSingle(core.Config{Seed: 3, Train: tc},
		series[:60], series[60:], core.Hyperparams{HistoryLen: 4, CellSize: 2, Layers: 1, BatchSize: 8})
	if err != nil {
		panic(err)
	}
	return m
})

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, _ := filepath.Rel(src, path)
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("copying %s: %v", src, err)
	}
}

func adminCounters(t *testing.T, adminURL string) map[string]int64 {
	t.Helper()
	resp, err := http.Get(adminURL + "/debug/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap.Counters
}

// soakOptions builds the fleet config for a fire run on the given dirs.
func soakOptions(modelsDir, walDir string, reg *obs.Registry) fleet.Options {
	return fleet.Options{
		Dir:            modelsDir,
		Metrics:        reg,
		Window:         8,
		MinSamples:     4,
		DriftThreshold: 50,
		HistoryCap:     64,
		IngestShards:   8,
		IngestQueue:    4096,
		WAL:            wal.Options{Dir: walDir, Sync: wal.SyncInterval, SyncInterval: 20 * time.Millisecond},
	}
}

// TestStreamSoakFleetUnderFire is the PR's e2e soak: bursty binary-framed
// streams across 1000 workloads for a few seconds, with a crash cut of
// the WAL taken mid-soak while ingest is hot. It proves (1) zero silent
// drops — the generator's ledger reconciles exactly with the server's
// /debug/metrics counters all the way down to applied evaluator
// mutations; (2) a fleet rebooted from the mid-soak crash cut replays
// cleanly despite the torn tail; (3) after scoring real forecasts, a
// fleet rebooted from a final crash cut reaches evaluator-state parity
// with the live fleet.
func TestStreamSoakFleetUnderFire(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	reg := obs.NewRegistry()
	modelsDir, walDir := t.TempDir(), t.TempDir()
	fl, err := fleet.Open(soakOptions(modelsDir, walDir, reg))
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	m := soakModel()
	ids := make([]string, 1000)
	for i := range ids {
		ids[i] = fmt.Sprintf("w%04d", i)
		if err := fl.Add(ids[i], m); err != nil {
			t.Fatal(err)
		}
	}
	fl.StartIngest()
	s, err := serve.NewFleet(fl, serve.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()
	admin := httptest.NewServer(s.Admin(false))
	defer admin.Close()

	g, err := loadgen.New(loadgen.Config{
		BaseURL:    ts.URL,
		Workloads:  ids,
		Mode:       loadgen.ModeFrames,
		BaseRPS:    2500,
		BurstRPS:   10000,
		BurstEvery: 600 * time.Millisecond,
		BurstLen:   200 * time.Millisecond,
		Workers:    8,
		Chunk:      64,
		Duration:   2500 * time.Millisecond,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	type result struct {
		rep loadgen.Report
		err error
	}
	done := make(chan result, 1)
	go func() {
		rep, err := g.Run(context.Background())
		done <- result{rep, err}
	}()

	// Crash cut #1: snapshot the WAL mid-soak, while appends are hot.
	time.Sleep(1200 * time.Millisecond)
	cutModels, cutWAL := t.TempDir(), t.TempDir()
	copyTree(t, modelsDir, cutModels)
	copyTree(t, walDir, cutWAL)

	res := <-done
	if res.err != nil {
		t.Fatal(res.err)
	}
	rep := res.rep

	// (1) Zero silent drops, generator side: every record is accounted.
	if rep.Sent == 0 || rep.Errors != 0 {
		t.Fatalf("soak report %+v: want traffic and zero transport errors", rep)
	}
	if rep.Accepted+rep.Rejected+rep.Shed != rep.Sent {
		t.Fatalf("silent drop in generator ledger: %+v", rep)
	}
	if !fl.FlushIngest(30 * time.Second) {
		t.Fatal("ingest queues did not drain after soak")
	}
	// Server side: the admitted counts reconcile exactly through every
	// layer — HTTP accept, shard enqueue, locked apply, evaluator.
	c := adminCounters(t, admin.URL)
	for counter, want := range map[string]int64{
		"serve.stream.accepted": rep.Accepted,
		"serve.stream.rejected": rep.Rejected,
		"fleet.ingest.enqueued": rep.Accepted,
		"fleet.ingest.applied":  rep.Accepted,
		"fleet.observations":    rep.Accepted,
	} {
		if got := c[counter]; got != want {
			t.Errorf("%s = %d, want %d (report %+v)", counter, got, want, rep)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	// (2) The mid-soak crash cut reboots: replay tolerates the torn tail
	// and reconstructs every workload without degrading durability.
	f2, err := fleet.Open(soakOptions(cutModels, cutWAL, obs.NewRegistry()))
	if err != nil {
		t.Fatalf("reopening mid-soak crash cut: %v", err)
	}
	if f2.DurabilityDegraded() {
		t.Fatal("mid-soak crash cut replay degraded durability")
	}
	if st := f2.WALStats(); st.Replayed == 0 {
		t.Fatalf("mid-soak crash cut replayed nothing: %+v", st)
	}
	if got := f2.Len(); got != len(ids) {
		t.Fatalf("crash-cut fleet has %d workloads, want %d", got, len(ids))
	}
	f2.Close()

	// Score real forecasts so final-parity state is non-trivial: rolling
	// windows, drift flags and forecast horizons all become live state.
	hist := []float64{100, 101, 99, 102, 100, 98, 103, 100}
	fbody, _ := json.Marshal(map[string]any{"history": hist, "steps": 2})
	for round := 0; round < 2; round++ {
		for i, id := range ids[:10] {
			resp, err := http.Post(ts.URL+"/v1/workloads/"+id+"/forecast", "application/json", jsonReader(fbody))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			values := []float64{100, 101}
			if i < 3 {
				values = []float64{9000, 9100} // far off the forecast: drives drift
			}
			if err := fl.EnqueueObserve(id, values); err != nil {
				t.Fatal(err)
			}
		}
		if !fl.FlushIngest(10 * time.Second) {
			t.Fatal("forecast-scoring records did not drain")
		}
	}

	// (3) Final crash cut (no clean shutdown) → full evaluator parity.
	cut2Models, cut2WAL := t.TempDir(), t.TempDir()
	copyTree(t, modelsDir, cut2Models)
	copyTree(t, walDir, cut2WAL)
	live := fl.Statuses()
	f3, err := fleet.Open(soakOptions(cut2Models, cut2WAL, obs.NewRegistry()))
	if err != nil {
		t.Fatalf("reopening final crash cut: %v", err)
	}
	defer f3.Close()
	rebooted := f3.Statuses()
	normalize := func(sts []fleet.WorkloadStatus) {
		for i := range sts {
			sts[i].Resident = false // residency is a cache fact, not evaluator state
		}
	}
	normalize(live)
	normalize(rebooted)
	if !reflect.DeepEqual(live, rebooted) {
		for i := range live {
			if !reflect.DeepEqual(live[i], rebooted[i]) {
				t.Errorf("replay parity: workload %s live %+v != rebooted %+v", live[i].ID, live[i], rebooted[i])
			}
		}
		t.Fatal("crash-cut replay did not reconstruct live evaluator state")
	}
	var drifted int
	for _, st := range live {
		if st.Drift {
			drifted++
		}
	}
	if drifted != 3 {
		t.Fatalf("%d workloads drifted, want the 3 wild-valued ones", drifted)
	}
}

func jsonReader(b []byte) io.Reader { return &sliceReader{b: b} }

type sliceReader struct {
	b []byte
	n int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.n >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.n:])
	r.n += n
	return n, nil
}

// fireRun boots a fresh 16-workload fleet (WAL at SyncAlways — the
// configuration where per-record fsync makes the single-POST path pay
// full price) and saturates it through the given transport.
func fireRun(t *testing.T, mode loadgen.Mode, chunk, rps int, probe string) loadgen.Report {
	t.Helper()
	reg := obs.NewRegistry()
	fl, err := fleet.Open(fleet.Options{
		Metrics:        reg,
		Window:         8,
		MinSamples:     4,
		DriftThreshold: 50,
		IngestShards:   8,
		IngestQueue:    8192,
		WAL:            wal.Options{Dir: t.TempDir()},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	m := soakModel()
	ids := make([]string, 16)
	for i := range ids {
		ids[i] = fmt.Sprintf("fire-%02d", i)
		if err := fl.Add(ids[i], m); err != nil {
			t.Fatal(err)
		}
	}
	if probe != "" {
		if err := fl.Add(probe, m); err != nil {
			t.Fatal(err)
		}
	}
	fl.StartIngest()
	s, err := serve.NewFleet(fl, serve.Options{Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s)
	defer ts.Close()

	g, err := loadgen.New(loadgen.Config{
		BaseURL:    ts.URL,
		Workloads:  ids,
		Mode:       mode,
		BaseRPS:    rps,
		Workers:    8,
		Chunk:      chunk,
		Duration:   1200 * time.Millisecond,
		Seed:       5,
		DriftProbe: probe,
		ProbeEvery: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := g.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !fl.FlushIngest(30 * time.Second) {
		t.Fatal("ingest queues did not drain")
	}
	if rep.Errors != 0 {
		t.Fatalf("%s run lost records to errors: %+v", mode, rep)
	}
	if rep.Accepted+rep.Rejected+rep.Shed != rep.Sent {
		t.Fatalf("%s run has a silent drop: %+v", mode, rep)
	}
	return rep
}

// TestFleetUnderFireThroughput benchmarks the stream path against the
// single-POST observe baseline under identical fleet configuration and
// asserts a real multiple. The full numbers (accepted RPS, p99, drift
// detection latency under fire) are written as JSON to $FLEET_FIRE_OUT
// for scripts/bench.sh to fold into the benchmark artifact; the in-test
// floor stays conservative so loaded CI machines don't flake.
func TestFleetUnderFireThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("fire benchmark")
	}
	observe := fireRun(t, loadgen.ModeObserve, 1, 120000, "")
	stream := fireRun(t, loadgen.ModeFrames, 256, 1200000, "fire-probe")
	speedup := stream.RPS / observe.RPS
	t.Logf("observe: %.0f rec/s (p99 %.2fms)  stream: %.0f rec/s (p99 %.2fms)  speedup %.1fx  drift-detect %.0fms",
		observe.RPS, observe.P99Ms, stream.RPS, stream.P99Ms, speedup, stream.DriftDetectMs)
	if speedup < 3 {
		t.Fatalf("stream path only %.1fx over single-POST observe (stream %.0f rec/s, observe %.0f rec/s)",
			speedup, stream.RPS, observe.RPS)
	}
	if !stream.DriftDetected {
		t.Fatal("drift probe did not detect the shifted workload while under fire")
	}
	if out := os.Getenv("FLEET_FIRE_OUT"); out != "" {
		artifact := map[string]any{
			"observe_rps":      observe.RPS,
			"observe_p99_ms":   observe.P99Ms,
			"stream_rps":       stream.RPS,
			"stream_p99_ms":    stream.P99Ms,
			"speedup":          speedup,
			"drift_detect_ms":  stream.DriftDetectMs,
			"stream_sent":      stream.Sent,
			"stream_accepted":  stream.Accepted,
			"observe_sent":     observe.Sent,
			"observe_accepted": observe.Accepted,
		}
		data, _ := json.MarshalIndent(artifact, "", "  ")
		if err := os.WriteFile(out, data, 0o644); err != nil {
			t.Fatalf("writing fire artifact: %v", err)
		}
	}
}
