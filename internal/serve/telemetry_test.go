package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"loaddynamics/internal/obs"
	"loaddynamics/internal/obs/expotest"
)

// forecastBody marshals a forecast request for raw http.Post calls.
func forecastBody(t *testing.T, history []float64, steps int) []byte {
	t.Helper()
	body, err := json.Marshal(ForecastRequest{History: history, Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// adminGet issues a GET against the admin handler and returns the recorder.
func adminGet(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

func TestAdminPrometheusExposition(t *testing.T) {
	reg := obs.NewRegistry()
	ts, s, m, series := newTestServerOpts(t, Options{Metrics: reg})
	// Generate some real traffic so the exposition carries live series.
	body := forecastBody(t, series[:m.HP.HistoryLen], 3)
	resp, err := http.Post(ts.URL+"/v1/forecast", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	admin := s.Admin(false)
	for _, path := range []string{"/metrics", "/debug/metrics?format=prometheus"} {
		rec := adminGet(t, admin, path)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, rec.Code)
		}
		if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
			t.Errorf("GET %s: content type %q", path, ct)
		}
		// The same strict parser the renderer's own tests use must accept
		// a live scrape.
		values, hists := expotest.Verify(t, rec.Body.String())
		if got := values["serve_requests_forecast_total"]; got != 1 {
			t.Errorf("GET %s: forecast request counter = %v, want 1", path, got)
		}
		if h := hists["serve_latency_seconds_forecast"]; h == nil || h.Count != 1 {
			t.Errorf("GET %s: latency histogram missing or empty", path)
		}
	}
	// The JSON snapshot stays the default format.
	rec := adminGet(t, s.Admin(false), "/debug/metrics")
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("GET /debug/metrics: content type %q, want JSON", ct)
	}
}

func TestRequestIDCorrelatesLogAndTrace(t *testing.T) {
	var logBuf syncBuffer
	trace := obs.NewTrace()
	lg := slog.New(slog.NewJSONHandler(&logBuf, nil))
	ts, _, m, series := newTestServerOpts(t, Options{
		Metrics: obs.NewRegistry(), Logger: lg, Trace: trace,
	})
	body := forecastBody(t, series[:m.HP.HistoryLen], 1)
	resp, err := http.Post(ts.URL+"/v1/forecast", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	reqID := resp.Header.Get("X-Request-ID")
	if !obs.ValidRequestID(reqID) {
		t.Fatalf("response carries no valid X-Request-ID: %q", reqID)
	}

	// The ID from the response header must appear in the slog JSON line...
	var logged map[string]any
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, line)
		}
		if rec["request_id"] == reqID {
			logged = rec
			break
		}
	}
	if logged == nil {
		t.Fatalf("request ID %q not found in logs:\n%s", reqID, logBuf.String())
	}
	for key, want := range map[string]any{
		"component": "serve", "route": "forecast", "status": 200.0, "msg": "request",
	} {
		if logged[key] != want {
			t.Errorf("log[%q] = %v, want %v", key, logged[key], want)
		}
	}
	if logged["workload"] != DefaultWorkloadID {
		t.Errorf("log workload = %v, want %q", logged["workload"], DefaultWorkloadID)
	}
	if _, ok := logged["duration_ms"].(float64); !ok {
		t.Errorf("log duration_ms = %v, want a number", logged["duration_ms"])
	}

	// ...and on the exported serve.request span.
	var span *obs.SpanRecord
	for _, rec := range trace.Named("serve.request") {
		if rec.Attr("request_id") == reqID {
			r := rec
			span = &r
			break
		}
	}
	if span == nil {
		t.Fatalf("request ID %q not found on any serve.request span", reqID)
	}
	if got := span.Attr("route"); got != "forecast" {
		t.Errorf("span route = %v, want forecast", got)
	}
	if got := span.Attr("status"); got != 200 && got != 200.0 {
		t.Errorf("span status = %v, want 200", got)
	}
}

func TestRequestIDSuppliedByCaller(t *testing.T) {
	ts, _, _, _ := newTestServerOpts(t, Options{Metrics: obs.NewRegistry()})
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", "caller-supplied.id-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-ID"); got != "caller-supplied.id-1" {
		t.Errorf("well-formed caller ID not echoed: got %q", got)
	}

	// A hostile ID (log-injection shaped) is replaced, not echoed.
	req, _ = http.NewRequest(http.MethodGet, ts.URL+"/healthz", nil)
	req.Header.Set("X-Request-ID", `bad"id with spaces`)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := resp.Header.Get("X-Request-ID")
	if got == `bad"id with spaces` || !obs.ValidRequestID(got) {
		t.Errorf("hostile caller ID echoed or replacement invalid: %q", got)
	}
}

func TestErrorCounterFeedsRouteSLO(t *testing.T) {
	reg := obs.NewRegistry()
	ts, _, _, series := newTestServerOpts(t, Options{Metrics: reg})
	// A forecast against an unknown workload is the caller's mistake: 404,
	// not a 5xx, so it must not burn the availability SLO.
	body := forecastBody(t, series[:50], 1)
	resp, err := http.Post(ts.URL+"/v1/workloads/nope/forecast", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown workload: status %d", resp.StatusCode)
	}
	if got := reg.Counter("serve.errors.workload_forecast").Value(); got != 0 {
		t.Errorf("4xx incremented the 5xx error counter: %d", got)
	}
}

func TestHealthEndpointFollowsBurnRate(t *testing.T) {
	reg := obs.NewRegistry()
	_, s, _, _ := newTestServerOpts(t, Options{Metrics: reg})
	admin := s.Admin(false)
	now := time.Unix(1_700_000_000, 0)

	// Clean baseline: two samples of zero traffic → healthy.
	s.SLO().Sample(now)
	now = now.Add(time.Minute)
	s.SLO().Sample(now)
	if rec := adminGet(t, admin, "/debug/health"); rec.Code != http.StatusOK {
		t.Fatalf("clean engine: health status %d: %s", rec.Code, rec.Body.String())
	}

	// Induce a fast burn: half of forecast traffic 5xx against a 1% budget.
	reg.Counter("serve.requests.forecast").Add(100)
	reg.Counter("serve.errors.forecast").Add(50)
	now = now.Add(time.Minute)
	s.SLO().Sample(now)
	rec := adminGet(t, admin, "/debug/health")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("under fast burn: health status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	var failing struct {
		Status string   `json:"status"`
		Firing []string `json:"firing"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &failing); err != nil {
		t.Fatal(err)
	}
	if failing.Status != "failing" || len(failing.Firing) == 0 {
		t.Errorf("503 body: %+v", failing)
	}
	if f := failing.Firing[0]; f != "availability:forecast" {
		t.Errorf("firing objective %q, want availability:forecast", f)
	}

	// /debug/slo reports the same state machine-readably.
	rec = adminGet(t, admin, "/debug/slo")
	if rec.Code != http.StatusOK {
		t.Fatalf("/debug/slo status %d", rec.Code)
	}
	var slo obs.SLOStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &slo); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, o := range slo.Objectives {
		if o.Name == "availability:forecast" {
			found = true
			if o.State != obs.BurnFast {
				t.Errorf("/debug/slo state %s, want fast_burn", o.State)
			}
		}
	}
	if !found {
		t.Error("/debug/slo is missing the forecast availability objective")
	}

	// Recovery: the burst ages out of the slow window and clean traffic
	// resumes → health returns to 200.
	now = now.Add(2 * time.Hour)
	reg.Counter("serve.requests.forecast").Add(100)
	s.SLO().Sample(now)
	now = now.Add(time.Minute)
	reg.Counter("serve.requests.forecast").Add(100)
	s.SLO().Sample(now)
	if rec := adminGet(t, admin, "/debug/health"); rec.Code != http.StatusOK {
		t.Fatalf("after recovery: health status %d: %s", rec.Code, rec.Body.String())
	}
}

func TestServerSLOCoversDriftGauges(t *testing.T) {
	reg := obs.NewRegistry()
	_, s, _, _ := newTestServerOpts(t, Options{Metrics: reg})
	admin := s.Admin(false)
	now := time.Unix(1_700_000_000, 0)
	// A workload whose rolling MAPE sustains far above the drift objective
	// pages through the same burn-rate path as a latency regression.
	reg.Gauge("fleet.rolling_mape_pct." + DefaultWorkloadID).Set(900)
	s.SLO().Sample(now)
	now = now.Add(time.Minute)
	s.SLO().Sample(now)
	rec := adminGet(t, admin, "/debug/health")
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("drifted workload: health status %d, want 503: %s", rec.Code, rec.Body.String())
	}
	if !strings.Contains(rec.Body.String(), "drift:"+DefaultWorkloadID) {
		t.Errorf("503 body does not name the drift objective: %s", rec.Body.String())
	}
}

func TestStartTelemetryPopulatesRuntimeMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	_, s, _, _ := newTestServerOpts(t, Options{Metrics: reg})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	s.StartTelemetry(ctx, 5*time.Millisecond)
	deadline := time.Now().Add(5 * time.Second)
	for reg.Gauge("runtime.goroutines").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("runtime collector never sampled")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// syncBuffer is a mutex-guarded bytes.Buffer: the slog handler writes
// from request goroutines while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
