package serve

// POST /v1/observe:stream — the high-throughput ingest path. One request
// carries many observation records for many workloads, as NDJSON (one
// {"workload","values"} object per line; any concatenated-JSON stream
// decodes) or, with Content-Type application/x-ldstream, as
// length-prefixed binary frames:
//
//	u32 payloadLen LE | payload
//	payload = idLen u8 | id | count u32 | count × float64 (LE bits)
//
// Records are admitted into the fleet's sharded ingest queues
// (fleet.EnqueueObserve) — validation is synchronous, application is
// asynchronous under the shard locks. Semantics are 207-style partial
// accept: a record that fails validation (unknown workload, empty or
// non-finite values, oversized batch) is reported in the response's
// per-record error list and the stream continues. Backpressure is
// explicit: the first shard-queue overflow stops the read and the whole
// request gets 429 with a Retry-After that scales with the server's
// consecutive-shed streak (the same policy as forecast shedding, on its
// own streak counter). An oversized body trips MaxBytesReader → 400.
// The stream endpoint takes no in-flight forecast slot: its backpressure
// is the bounded queue, not the forecast concurrency limiter.

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sync"

	"loaddynamics/internal/fleet"
	"loaddynamics/internal/obs"
)

// StreamBinaryContentType selects the length-prefixed binary framing on
// POST /v1/observe:stream. Anything else is decoded as NDJSON.
const StreamBinaryContentType = "application/x-ldstream"

// maxStreamFrameBytes bounds one binary frame's payload. A corrupt or
// hostile length prefix cannot make the server buffer a multi-gigabyte
// frame; the cap comfortably fits MaxObservationsLen float64 values.
const maxStreamFrameBytes = 1 << 20

// maxStreamErrors caps the per-record error list echoed in the response;
// past it errors are still counted in "rejected" but elided and the
// response is marked truncated.
const maxStreamErrors = 64

// StreamRecord is one streamed observation batch: the workload it belongs
// to and its observed arrivals, oldest first.
type StreamRecord struct {
	Workload string    `json:"workload"`
	Values   []float64 `json:"values"`
}

// StreamRecordError reports one rejected record by stream index.
type StreamRecordError struct {
	Index    int    `json:"index"`
	Workload string `json:"workload,omitempty"`
	Error    string `json:"error"`
}

// StreamResponse summarizes one stream request: every record was either
// accepted into the ingest queue or rejected with a reason (the first
// maxStreamErrors reasons are echoed; Truncated marks elision). Stopped
// is set when the server stopped reading early — backpressure (429) or an
// undecodable stream suffix — so the client knows records after the
// reported indexes were never examined.
type StreamResponse struct {
	Accepted  int                 `json:"accepted"`
	Rejected  int                 `json:"rejected"`
	Errors    []StreamRecordError `json:"errors,omitempty"`
	Truncated bool                `json:"truncated,omitempty"`
	Stopped   bool                `json:"stopped,omitempty"`
}

// streamRecPool recycles decode targets: encoding/json reuses the Values
// capacity already present in the struct, so steady-state NDJSON decoding
// does not grow fresh backing arrays per record.
var streamRecPool = sync.Pool{New: func() any { return new(StreamRecord) }}

// streamBufPool recycles the binary framing read state (bufio reader +
// payload scratch) across requests.
var streamBufPool = sync.Pool{New: func() any {
	return &streamBuf{br: bufio.NewReaderSize(nil, 32<<10)}
}}

type streamBuf struct {
	br      *bufio.Reader
	payload []byte
}

// AppendStreamFrame appends the binary framing of one stream record to
// dst — the encoder mirrored by the server's frame decoder, shared with
// cmd/loadgen and the protocol tests.
func AppendStreamFrame(dst []byte, workload string, values []float64) []byte {
	payloadLen := 1 + len(workload) + 4 + 8*len(values)
	var n [4]byte
	binary.LittleEndian.PutUint32(n[:], uint32(payloadLen))
	dst = append(dst, n[:]...)
	dst = append(dst, byte(len(workload)))
	dst = append(dst, workload...)
	binary.LittleEndian.PutUint32(n[:], uint32(len(values)))
	dst = append(dst, n[:]...)
	var v [8]byte
	for _, x := range values {
		binary.LittleEndian.PutUint64(v[:], math.Float64bits(x))
		dst = append(dst, v[:]...)
	}
	return dst
}

// decodeStreamFrame parses one binary frame payload into rec, reusing
// rec's Values capacity. Structural errors (truncated id, value count not
// matching the payload size) poison the stream — the caller cannot resync
// past a malformed frame.
func decodeStreamFrame(p []byte, rec *StreamRecord) error {
	if len(p) < 5 {
		return fmt.Errorf("frame payload %d bytes, need at least 5", len(p))
	}
	idLen := int(p[0])
	if idLen == 0 {
		return errors.New("frame has an empty workload id")
	}
	if len(p) < 1+idLen+4 {
		return fmt.Errorf("frame truncated inside workload id (idLen %d, payload %d)", idLen, len(p))
	}
	rec.Workload = string(p[1 : 1+idLen])
	rest := p[1+idLen:]
	count := int(binary.LittleEndian.Uint32(rest))
	rest = rest[4:]
	if len(rest) != count*8 {
		return fmt.Errorf("frame declares %d values but carries %d bytes", count, len(rest))
	}
	if cap(rec.Values) < count {
		rec.Values = make([]float64, count)
	}
	rec.Values = rec.Values[:count]
	for i := 0; i < count; i++ {
		rec.Values[i] = math.Float64frombits(binary.LittleEndian.Uint64(rest[i*8:]))
	}
	return nil
}

// handleObserveStream serves POST /v1/observe:stream.
func (s *Server) handleObserveStream(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body := http.MaxBytesReader(w, r.Body, s.opts.MaxStreamBytes)
	rec := streamRecPool.Get().(*StreamRecord)
	defer streamRecPool.Put(rec)
	var resp StreamResponse

	// The stream's X-Request-ID (honored or minted by ServeHTTP) stamps
	// every flight event its record batches produce, so a drift chain can
	// be traced back to the exact stream request that carried the batch.
	reqID := w.Header().Get("X-Request-ID")

	// admit pushes one decoded record into its shard queue. It reports
	// whether the stream should keep going: a validation failure is a
	// per-record error (partial accept), a full shard queue is global
	// backpressure — stop reading, 429, Retry-After scaled by the
	// consecutive-shed streak. With the flight recorder on, each record
	// batch gets its own trace ID (one atomic add per record — many
	// batches share one stream request, so per-request granularity would
	// conflate independent workloads' chains); recorder off, tc stays
	// zero and nothing allocates.
	admit := func(index int) (keepGoing bool) {
		if len(rec.Values) > s.opts.MaxObservations {
			s.rejectRecord(&resp, index, rec.Workload,
				fmt.Sprintf("values exceeds %d observations", s.opts.MaxObservations))
			return true
		}
		var tc obs.TraceCtx
		if s.flight.Enabled() {
			tc = obs.TraceCtx{Trace: s.flight.NewTrace(), RequestID: reqID}
		}
		switch err := s.fleet.EnqueueObserveCtx(rec.Workload, rec.Values, tc); {
		case err == nil:
			resp.Accepted++
			s.m.streamAccepted.Inc()
			return true
		case errors.Is(err, fleet.ErrIngestQueueFull):
			resp.Stopped = true
			s.m.streamShed.Inc()
			w.Header().Set("Retry-After", s.retryAfter(s.ingestStreak.Add(1)))
			writeJSON(w, http.StatusTooManyRequests, resp)
			return false
		default:
			s.rejectRecord(&resp, index, rec.Workload, err.Error())
			return true
		}
	}

	var completed bool
	if r.Header.Get("Content-Type") == StreamBinaryContentType {
		completed = s.streamFrames(w, body, rec, &resp, admit)
	} else {
		completed = s.streamNDJSON(w, body, rec, &resp, admit)
	}
	if !completed {
		return // response already written (429, 400, or poisoned stream)
	}
	s.ingestStreak.Store(0)
	if s.fleet.DurabilityDegraded() {
		w.Header().Set("X-Durability", "degraded")
	}
	writeJSON(w, http.StatusOK, resp)
}

// rejectRecord records one per-record failure (207-style partial accept).
func (s *Server) rejectRecord(resp *StreamResponse, index int, workload, msg string) {
	resp.Rejected++
	s.m.streamRejected.Inc()
	if len(resp.Errors) < maxStreamErrors {
		resp.Errors = append(resp.Errors, StreamRecordError{Index: index, Workload: workload, Error: msg})
	} else {
		resp.Truncated = true
	}
}

// streamNDJSON drains a concatenated-JSON record stream. It reports true
// when the caller should write the 200 summary; false means a terminal
// response was already sent. A record that fails to parse poisons the
// rest of the stream (there is no way to resync NDJSON past a syntax
// error): before any record decoded it is a plain 400, mid-stream the
// accepted prefix is reported with Stopped set.
func (s *Server) streamNDJSON(w http.ResponseWriter, body io.Reader, rec *StreamRecord, resp *StreamResponse, admit func(int) bool) bool {
	dec := json.NewDecoder(body)
	for index := 0; ; index++ {
		rec.Workload = ""
		rec.Values = rec.Values[:0]
		switch err := dec.Decode(rec); {
		case err == io.EOF:
			if index == 0 {
				httpError(w, http.StatusBadRequest, "empty stream body")
				return false
			}
			return true
		case err != nil:
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("stream body exceeds %d bytes", s.opts.MaxStreamBytes))
				return false
			}
			if index == 0 {
				httpError(w, http.StatusBadRequest, "invalid JSON: "+err.Error())
				return false
			}
			s.rejectRecord(resp, index, "", "invalid JSON: "+err.Error())
			resp.Stopped = true
			return true
		}
		if !admit(index) {
			return false
		}
	}
}

// streamFrames drains a length-prefixed binary frame stream; semantics
// mirror streamNDJSON (a malformed frame poisons the remainder).
func (s *Server) streamFrames(w http.ResponseWriter, body io.Reader, rec *StreamRecord, resp *StreamResponse, admit func(int) bool) bool {
	sb := streamBufPool.Get().(*streamBuf)
	sb.br.Reset(body)
	defer func() {
		sb.br.Reset(nil) // drop the body reference before pooling
		streamBufPool.Put(sb)
	}()
	poison := func(index int, msg string) bool {
		if index == 0 {
			httpError(w, http.StatusBadRequest, msg)
			return false
		}
		s.rejectRecord(resp, index, "", msg)
		resp.Stopped = true
		return true
	}
	var hdr [4]byte
	for index := 0; ; index++ {
		switch _, err := io.ReadFull(sb.br, hdr[:]); {
		case err == io.EOF:
			if index == 0 {
				httpError(w, http.StatusBadRequest, "empty stream body")
				return false
			}
			return true
		case err != nil:
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("stream body exceeds %d bytes", s.opts.MaxStreamBytes))
				return false
			}
			return poison(index, "truncated frame header")
		}
		payloadLen := int(binary.LittleEndian.Uint32(hdr[:]))
		if payloadLen < 5 || payloadLen > maxStreamFrameBytes {
			return poison(index, fmt.Sprintf("frame payload length %d outside 5..%d", payloadLen, maxStreamFrameBytes))
		}
		if cap(sb.payload) < payloadLen {
			sb.payload = make([]byte, payloadLen)
		}
		sb.payload = sb.payload[:payloadLen]
		if _, err := io.ReadFull(sb.br, sb.payload); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusBadRequest, fmt.Sprintf("stream body exceeds %d bytes", s.opts.MaxStreamBytes))
				return false
			}
			return poison(index, "truncated frame payload")
		}
		rec.Workload = ""
		rec.Values = rec.Values[:0]
		if err := decodeStreamFrame(sb.payload, rec); err != nil {
			return poison(index, err.Error())
		}
		if !admit(index) {
			return false
		}
	}
}
