// Command loadctl is the LoadDynamics command-line tool: generate workload
// traces, train a predictor on a trace, evaluate predictor accuracy, and
// produce forecasts.
//
// Usage:
//
//	loadctl generate -kind gl -interval 30 -days 7 -out trace.csv
//	loadctl evaluate -kind wiki -interval 30 -days 4 -predictor loaddynamics
//	loadctl evaluate -in trace.csv -interval 30 -predictor cloudinsight
//	loadctl predict  -in trace.csv -interval 30 -steps 5
//	loadctl fleet    -kinds gl,wiki,az -interval 30 -out-dir models/
//	loadctl timeline -server http://localhost:8080 -workload gl-30m
//
// The fleet subcommand trains one model per workload kind and writes them
// into a model directory (snapshot per workload plus a versioned
// manifest.json) that 'loadserve -models' boots from. The timeline
// subcommand reads a running server's flight recorder and renders one
// workload's causal event chain (observe → drift → rebuild → promotion).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"strings"
	"syscall"
	"time"

	"loaddynamics/internal/bo"
	"loaddynamics/internal/core"
	"loaddynamics/internal/experiments"
	"loaddynamics/internal/fleet"
	"loaddynamics/internal/obs"
	"loaddynamics/internal/predictors"
	"loaddynamics/internal/profile"
	"loaddynamics/internal/serve"
	"loaddynamics/internal/timeseries"
	"loaddynamics/internal/traces"
	"loaddynamics/internal/wal"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadctl: ")
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "generate":
		cmdGenerate(os.Args[2:])
	case "evaluate":
		cmdEvaluate(os.Args[2:])
	case "predict":
		cmdPredict(os.Args[2:])
	case "fleet":
		cmdFleet(os.Args[2:])
	case "timeline":
		cmdTimeline(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: loadctl <generate|evaluate|predict|fleet|timeline> [flags]
  generate  synthesize a workload trace and write it as CSV
  evaluate  report a predictor's MAPE on a trace (synthetic or CSV)
  predict   train LoadDynamics on a CSV trace and forecast the next intervals
  fleet     train one model per workload kind into a directory for 'loadserve -models'
  timeline  render a workload's flight-recorder causal timeline from a running server
run 'loadctl <command> -h' for flags`)
	os.Exit(2)
}

func cmdGenerate(args []string) {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	kind := fs.String("kind", "gl", "workload kind: wiki, lcg, az, gl, fb")
	interval := fs.Int("interval", 30, "interval length in minutes (multiple of 5)")
	days := fs.Int("days", 0, "trace length in days (0 = workload default)")
	seed := fs.Int64("seed", 42, "generator seed")
	out := fs.String("out", "", "output CSV path (default stdout)")
	mustParse(fs, args)

	cfg := traces.WorkloadConfig{Kind: traces.Kind(*kind), IntervalMinutes: *interval}
	s, err := cfg.Build(*days, *seed)
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		if err := traces.WriteCSV(os.Stdout, s); err != nil {
			log.Fatal(err)
		}
		return
	}
	if err := traces.SaveFile(*out, s); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d intervals of %s to %s\n", s.Len(), s.Name, *out)
}

// loadSeries builds a series either from a CSV file or from the synthetic
// generators.
func loadSeries(in, kind string, interval, days int, seed int64) (*timeseries.Series, error) {
	if in != "" {
		return traces.LoadFile(in, "csv-trace", time.Duration(interval)*time.Minute)
	}
	cfg := traces.WorkloadConfig{Kind: traces.Kind(kind), IntervalMinutes: interval}
	return cfg.Build(days, seed)
}

func cmdEvaluate(args []string) {
	fs := flag.NewFlagSet("evaluate", flag.ExitOnError)
	in := fs.String("in", "", "CSV trace to evaluate on (overrides -kind)")
	kind := fs.String("kind", "gl", "synthetic workload kind")
	interval := fs.Int("interval", 30, "interval length in minutes")
	days := fs.Int("days", 4, "synthetic trace length in days")
	seed := fs.Int64("seed", 42, "seed")
	predictor := fs.String("predictor", "loaddynamics", "loaddynamics, cloudinsight, cloudscale or wood")
	scaleName := fs.String("scale", "quick", "LoadDynamics budget: tiny, quick or full")
	parallel := fs.Int("parallel", 0, "worker count for candidate evaluation (0 = all CPUs, 1 = exact serial search)")
	savePath := fs.String("save", "", "write the trained LoadDynamics model to this JSON file")
	checkpoint := fs.String("checkpoint", "", "persist the model database to this file after every candidate (enables -resume)")
	resume := fs.Bool("resume", false, "warm-start the search from the -checkpoint file of an interrupted run")
	candTO := fs.Duration("candidate-timeout", 0, "per-candidate training time limit (0 = unlimited)")
	traceOut := fs.String("trace-out", "", "write the build trace (per-candidate and BO round spans, JSONL) to this file")
	setupLog := logFlags(fs)
	mustParse(fs, args)
	lg := setupLog()

	s, err := loadSeries(*in, *kind, *interval, *days, *seed)
	if err != nil {
		log.Fatal(err)
	}
	split := timeseries.DefaultSplit(s)
	known := append(append([]float64{}, split.Train.Values...), split.Validate.Values...)

	var mape float64
	switch *predictor {
	case "loaddynamics":
		sc, err := scaleByName(*scaleName)
		if err != nil {
			log.Fatal(err)
		}
		sc.Seed = *seed
		tr := buildTrace(*traceOut)
		f, err := core.New(core.Config{
			Space:            sc.SpaceFor(traces.Kind(*kind)),
			MaxIters:         sc.MaxIters,
			InitPoints:       sc.InitPoints,
			Seed:             sc.Seed,
			Train:            sc.Train,
			Scaler:           "minmax",
			Parallel:         workerCount(*parallel),
			CandidateTimeout: *candTO,
			CheckpointPath:   *checkpoint,
			Resume:           *resume,
			Trace:            tr,
			Logger:           lg,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := buildInterruptible(f, split.Train.Values, split.Validate.Values, *checkpoint, tr, *traceOut)
		fmt.Printf("selected hyperparameters: %s (validation MAPE %.1f%%)\n", res.Best.HP, res.Best.ValError)
		if *savePath != "" {
			if err := res.Best.SaveFile(*savePath); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("model written to %s\n", *savePath)
		}
		if mape, err = res.Best.Evaluate(known, split.Test.Values); err != nil {
			log.Fatal(err)
		}
	case "cloudinsight", "cloudscale", "wood":
		p, err := experiments.NewBaseline(experiments.BaselineName(*predictor), 8)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Fit(known); err != nil {
			log.Fatal(err)
		}
		preds, err := predictors.WalkForward(p, known, split.Test.Values, 5)
		if err != nil {
			log.Fatal(err)
		}
		if mape, err = timeseries.MAPE(preds, split.Test.Values); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown predictor %q", *predictor)
	}
	fmt.Printf("%s on %s: test MAPE %.1f%% over %d intervals\n", *predictor, s.Name, mape, split.Test.Len())
}

func cmdPredict(args []string) {
	fs := flag.NewFlagSet("predict", flag.ExitOnError)
	in := fs.String("in", "", "CSV trace (required)")
	interval := fs.Int("interval", 30, "interval length in minutes")
	steps := fs.Int("steps", 3, "number of future intervals to forecast")
	seed := fs.Int64("seed", 42, "seed")
	scaleName := fs.String("scale", "quick", "LoadDynamics budget: tiny, quick or full")
	parallel := fs.Int("parallel", 0, "worker count for candidate evaluation (0 = all CPUs, 1 = exact serial search)")
	modelPath := fs.String("model", "", "use a saved model (from 'evaluate -save') instead of training")
	checkpoint := fs.String("checkpoint", "", "persist the model database to this file after every candidate (enables -resume)")
	resume := fs.Bool("resume", false, "warm-start the search from the -checkpoint file of an interrupted run")
	candTO := fs.Duration("candidate-timeout", 0, "per-candidate training time limit (0 = unlimited)")
	traceOut := fs.String("trace-out", "", "write the build trace (per-candidate and BO round spans, JSONL) to this file")
	setupLog := logFlags(fs)
	mustParse(fs, args)
	lg := setupLog()
	if *in == "" {
		log.Fatal("predict requires -in <trace.csv>")
	}
	s, err := loadSeries(*in, "", *interval, 0, *seed)
	if err != nil {
		log.Fatal(err)
	}

	var model *core.Model
	if *modelPath != "" {
		if model, err = core.LoadFile(*modelPath); err != nil {
			log.Fatal(err)
		}
	} else {
		sc, err := scaleByName(*scaleName)
		if err != nil {
			log.Fatal(err)
		}
		sc.Seed = *seed
		// Train on the first 75%, validate on the rest, then forecast
		// forward.
		split := timeseries.SplitFractions(s, 0.75, 0.25)
		tr := buildTrace(*traceOut)
		f, err := core.New(core.Config{
			Space:            sc.SpaceFor(traces.Google),
			MaxIters:         sc.MaxIters,
			InitPoints:       sc.InitPoints,
			Seed:             sc.Seed,
			Train:            sc.Train,
			Scaler:           "minmax",
			Parallel:         workerCount(*parallel),
			CandidateTimeout: *candTO,
			CheckpointPath:   *checkpoint,
			Resume:           *resume,
			Trace:            tr,
			Logger:           lg,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := buildInterruptible(f, split.Train.Values, split.Validate.Values, *checkpoint, tr, *traceOut)
		model = res.Best
	}
	fmt.Printf("model: %s (validation MAPE %.1f%%)\n", model.HP, model.ValError)
	forecasts := make([]float64, *steps)
	if err := model.PredictStepsInto(context.Background(), s.Values, forecasts); err != nil {
		log.Fatal(err)
	}
	for i, v := range forecasts {
		fmt.Printf("t+%d: %.0f jobs\n", i+1, v)
	}
}

// cmdFleet trains one LoadDynamics model per requested workload kind and
// registers each in a fleet model directory: one snapshot file per workload
// behind a versioned manifest.json, ready for 'loadserve -models'. Workload
// IDs are the trace names (e.g. "gl-30m"); re-running over an existing
// directory retrains and atomically promotes the listed workloads while
// leaving others untouched.
func cmdFleet(args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	kinds := fs.String("kinds", "gl,wiki", "comma-separated workload kinds to build (wiki, lcg, az, gl, fb)")
	interval := fs.Int("interval", 30, "interval length in minutes (multiple of 5)")
	days := fs.Int("days", 4, "synthetic trace length in days")
	seed := fs.Int64("seed", 42, "seed")
	scaleName := fs.String("scale", "quick", "LoadDynamics budget per workload: tiny, quick or full")
	parallel := fs.Int("parallel", 0, "worker count for candidate evaluation (0 = all CPUs)")
	outDir := fs.String("out-dir", "", "fleet model directory to write (required)")
	warmStart := fs.Bool("warm-start", true, "seed each workload's search with the tuned hyperparameters of the fingerprint-nearest workloads already built (and any prior store in -out-dir)")
	walDir := fs.String("wal-dir", "", "observation WAL directory to replay before building (optional; keeps a crashed server's evaluator state)")
	walFsync := fs.String("wal-fsync", "always", "WAL fsync policy: \"always\", \"off\", or an interval like \"250ms\"")
	setupLog := logFlags(fs)
	mustParse(fs, args)
	lg := setupLog()
	if *outDir == "" {
		log.Fatal("fleet requires -out-dir <directory>")
	}
	syncPolicy, syncEvery, err := wal.ParseSyncPolicy(*walFsync)
	if err != nil {
		log.Fatal(err)
	}
	fl, err := fleet.Open(fleet.Options{
		Dir:    *outDir,
		Logger: lg,
		WAL:    wal.Options{Dir: *walDir, Sync: syncPolicy, SyncInterval: syncEvery},
	})
	if err != nil {
		log.Fatal(err)
	}
	var built []string
	for _, kind := range strings.Split(*kinds, ",") {
		kind = strings.TrimSpace(kind)
		if kind == "" {
			continue
		}
		cfg := traces.WorkloadConfig{Kind: traces.Kind(kind), IntervalMinutes: *interval}
		s, err := cfg.Build(*days, *seed)
		if err != nil {
			log.Fatal(err)
		}
		sc, err := scaleByName(*scaleName)
		if err != nil {
			log.Fatal(err)
		}
		sc.Seed = *seed
		split := timeseries.SplitFractions(s, 0.75, 0.25)
		id := s.Name
		// Transfer learning: workloads already built (this run or a
		// previous one — the prior store persists in -out-dir) seed this
		// workload's search with their tuned hyperparameters.
		var priors []bo.PriorObs
		var ws profile.WarmStart
		if *warmStart {
			priors, ws = fl.TransferPriors(id, split.Train.Values)
		}
		f, err := core.New(core.Config{
			Space:             sc.SpaceFor(traces.Kind(kind)),
			MaxIters:          sc.MaxIters,
			InitPoints:        sc.InitPoints,
			Seed:              sc.Seed,
			Train:             sc.Train,
			Scaler:            "minmax",
			Parallel:          workerCount(*parallel),
			PriorObservations: priors,
			Logger:            lg,
		})
		if err != nil {
			log.Fatal(err)
		}
		res := buildInterruptible(f, split.Train.Values, split.Validate.Values, "", nil, "")
		if err := fl.Add(id, res.Best); err != nil {
			// Already in the manifest from a previous run: promote the
			// retrained model instead.
			if err := fl.Promote(id, res.Best); err != nil {
				log.Fatal(err)
			}
		}
		if err := fl.RecordBuildOutcome(id, split.Train.Values, res, ws); err != nil {
			lg.Warn("prior store rejected build outcome", "workload", id, "error", err.Error())
		}
		if ws.Cold() {
			fmt.Printf("workload %s: %s (validation MAPE %.1f%%, %d rounds to best, cold start)\n",
				id, res.Best.HP, res.Best.ValError, res.RoundsToBest())
		} else {
			fmt.Printf("workload %s: %s (validation MAPE %.1f%%, %d rounds to best, warm-started from %s)\n",
				id, res.Best.HP, res.Best.ValError, res.RoundsToBest(), strings.Join(ws.Neighbors, ","))
		}
		built = append(built, id)
	}
	if len(built) == 0 {
		log.Fatal("no workload kinds given")
	}
	fmt.Printf("fleet of %d workloads written to %s: serve with 'loadserve -models %s'\n", len(built), *outDir, *outDir)
}

// cmdTimeline fetches GET /v1/workloads/{id}/timeline from a running
// loadserve and renders the flight-recorder events as an indented causal
// chain: children are indented under the event their Parent names, so a
// promotion reads top-to-bottom as observe.batch → drift.detected →
// rebuild.started → rebuild.promoted.
func cmdTimeline(args []string) {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	server := fs.String("server", "http://localhost:8080", "forecast server base URL")
	workload := fs.String("workload", "", "workload ID (required)")
	rawJSON := fs.Bool("json", false, "print the raw timeline JSON instead of the rendered chain")
	mustParse(fs, args)
	if *workload == "" {
		log.Fatal("timeline requires -workload <id>")
	}
	url := strings.TrimRight(*server, "/") + "/v1/workloads/" + *workload + "/timeline"
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		log.Fatalf("GET %s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	var tl serve.TimelineResponse
	if err := json.NewDecoder(resp.Body).Decode(&tl); err != nil {
		log.Fatalf("decoding timeline: %v", err)
	}
	if *rawJSON {
		out, err := json.MarshalIndent(tl, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(string(out))
		return
	}
	if !tl.Enabled {
		fmt.Printf("workload %s: flight recorder is disabled on the server (start loadserve with -flight-events > 0)\n", tl.Workload)
		return
	}
	if len(tl.Events) == 0 {
		fmt.Printf("workload %s: no recorded events yet\n", tl.Workload)
		return
	}
	printTimeline(tl)
}

// printTimeline renders events oldest-first, indented by causal depth.
func printTimeline(tl serve.TimelineResponse) {
	index := make(map[obs.HexID]int, len(tl.Events))
	for i, ev := range tl.Events {
		index[ev.ID] = i
	}
	depths := make([]int, len(tl.Events))
	for i := range depths {
		depths[i] = -1
	}
	var depthOf func(i int) int
	depthOf = func(i int) int {
		if depths[i] >= 0 {
			return depths[i]
		}
		depths[i] = 0 // breaks cycles (impossible by construction, cheap to guard)
		ev := tl.Events[i]
		if p, ok := index[ev.Parent]; ok && ev.Parent != 0 && p != i {
			depths[i] = depthOf(p) + 1
		}
		return depths[i]
	}
	fmt.Printf("workload %s: %d events\n", tl.Workload, len(tl.Events))
	for i, ev := range tl.Events {
		line := fmt.Sprintf("%s  %s%-18s %-9s trace=%s",
			ev.Time.Format("15:04:05.000"),
			strings.Repeat("  ", depthOf(i)),
			ev.Kind, ev.Outcome, ev.Trace)
		if ev.RequestID != "" {
			line += " request_id=" + ev.RequestID
		}
		if len(ev.Attrs) > 0 {
			keys := make([]string, 0, len(ev.Attrs))
			for k := range ev.Attrs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				line += fmt.Sprintf(" %s=%v", k, ev.Attrs[k])
			}
		}
		fmt.Println(line)
	}
}

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "tiny":
		return experiments.Tiny(), nil
	case "quick":
		return experiments.Quick(), nil
	case "full":
		return experiments.Full(), nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q", name)
	}
}

// buildInterruptible runs the hyperparameter search under a context that
// SIGINT/SIGTERM cancels. An interrupted run exits with a pointer at the
// checkpoint (when one is being written) so the operator knows the work is
// resumable; any other build failure is fatal as before. The build trace,
// when one is being recorded, is flushed even on interruption — partial
// traces are exactly what an operator debugging a stuck build needs.
func buildInterruptible(f *core.Framework, train, validate []float64, checkpoint string, tr *obs.Trace, traceOut string) *core.Result {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	res, err := f.BuildContext(ctx, train, validate)
	writeTraceFile(tr, traceOut)
	if err != nil {
		if ctx.Err() != nil && checkpoint != "" && res != nil {
			log.Fatalf("%v\n%d completed candidates are saved in %s — rerun with -resume to continue the search",
				err, len(res.Database), checkpoint)
		}
		log.Fatal(err)
	}
	return res
}

// buildTrace returns a recording trace when -trace-out was given, nil (a
// no-op trace) otherwise.
func buildTrace(traceOut string) *obs.Trace {
	if traceOut == "" {
		return nil
	}
	return obs.NewTrace()
}

// writeTraceFile exports the build trace as JSONL. A trace-write failure is
// reported but not fatal — the build result is worth more than its trace.
func writeTraceFile(tr *obs.Trace, path string) {
	if tr == nil || path == "" {
		return
	}
	if err := tr.WriteFile(path); err != nil {
		log.Printf("writing build trace: %v", err)
		return
	}
	fmt.Printf("build trace (%d spans) written to %s\n", tr.Len(), path)
}

// workerCount resolves the -parallel flag: 0 means one worker per CPU.
func workerCount(flagVal int) int {
	if flagVal <= 0 {
		return runtime.NumCPU()
	}
	return flagVal
}

func mustParse(fs *flag.FlagSet, args []string) {
	if err := fs.Parse(args); err != nil {
		os.Exit(2)
	}
}

// logFlags registers the shared logging flags on a subcommand's flag set
// and returns a setup function to call after parsing. The configured
// logger becomes slog's default, so build lifecycle events from
// internal/core and internal/fleet (candidate quarantines, promotions)
// flow through the structured schema; -log-level debug additionally shows
// per-candidate training lines.
func logFlags(fs *flag.FlagSet) func() *slog.Logger {
	level := fs.String("log-level", "warn", "log verbosity: debug, info, warn or error")
	format := fs.String("log-format", "text", "log encoding: json or text")
	return func() *slog.Logger {
		lvl, err := obs.ParseLogLevel(*level)
		if err != nil {
			log.Fatal(err)
		}
		lg, err := obs.NewLogger(os.Stderr, lvl, *format)
		if err != nil {
			log.Fatal(err)
		}
		slog.SetDefault(lg)
		return lg
	}
}
