// Command loadserve exposes a trained LoadDynamics model as an HTTP
// forecast service — the endpoint an auto-scaler polls each interval.
//
// Train and save a model first, then serve it:
//
//	loadctl evaluate -kind gl -interval 30 -save model.json
//	loadserve -model model.json -addr :8080
//
// Endpoints: GET /healthz, GET /v1/model, POST /v1/forecast
// ({"history": [...], "steps": n}).
package main

import (
	"flag"
	"log"
	"net/http"
	"time"

	"loaddynamics/internal/core"
	"loaddynamics/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadserve: ")
	var (
		modelPath = flag.String("model", "", "trained model file (from 'loadctl evaluate -save'), required")
		addr      = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()
	if *modelPath == "" {
		log.Fatal("-model is required")
	}
	model, err := core.LoadFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	handler, err := serve.New(model)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("serving model %s (validation MAPE %.1f%%) on %s", model.HP, model.ValError, *addr)
	srv := &http.Server{
		Addr:         *addr,
		Handler:      handler,
		ReadTimeout:  30 * time.Second,
		WriteTimeout: 30 * time.Second,
	}
	log.Fatal(srv.ListenAndServe())
}
