// Command loadserve exposes trained LoadDynamics models as an HTTP
// forecast service — the endpoint an auto-scaler polls each interval.
//
// Single-model mode — train and save a model first, then serve it:
//
//	loadctl evaluate -kind gl -interval 30 -save model.json
//	loadserve -model model.json -addr :8080
//
// Fleet mode — build a model directory, then serve every workload in it
// with online drift detection and background self-rebuild:
//
//	loadctl fleet -kinds gl,wiki -interval 30 -out-dir models/
//	loadserve -models models/ -addr :8080 -rebuild-workers 1
//
// Endpoints: GET /healthz, GET /v1/workloads, POST
// /v1/workloads/{id}/forecast ({"history": [...], "steps": n}), POST
// /v1/workloads/{id}/observe ({"values": [...]}), GET
// /v1/workloads/{id}/model, plus the single-model aliases GET /v1/model,
// POST /v1/forecast and POST /v1/reload for the default workload.
//
// Operations:
//
//   - Observed arrivals posted to the observe endpoint are scored against
//     served forecasts; a workload whose rolling error drifts past
//     -drift-threshold (or
//     -drift-factor × its stored CV error) is rebuilt in the background
//     and the new model promoted only if its CV error improves.
//   - SIGHUP (or POST /v1/reload) atomically reloads the default
//     workload's model from disk; on a corrupt file the old model keeps
//     serving.
//   - SIGINT/SIGTERM drain in-flight requests for up to -shutdown-grace
//     before exiting (fleet rebuild workers are cancelled first).
//   - Requests beyond -max-inflight concurrent forecasts are shed with 503
//     and Retry-After; forecasts exceeding -request-timeout return 504.
//   - -admin-addr exposes GET /debug/metrics (request counters, latency
//     quantiles, fleet registry/drift/rebuild counters) on a separate
//     operator listener; -pprof additionally mounts net/http/pprof there.
//     Bind it to loopback.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"loaddynamics/internal/core"
	"loaddynamics/internal/fleet"
	"loaddynamics/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadserve: ")
	var (
		modelPath     = flag.String("model", "", "trained model file (from 'loadctl evaluate -save'); exactly one of -model/-models is required")
		modelsDir     = flag.String("models", "", "fleet model directory (from 'loadctl fleet'); exactly one of -model/-models is required")
		defaultWl     = flag.String("default-workload", "", "workload the single-model alias routes serve (default: \"default\", else the first workload)")
		addr          = flag.String("addr", ":8080", "listen address")
		reqTimeout    = flag.Duration("request-timeout", 10*time.Second, "per-forecast computation budget")
		maxInFlight   = flag.Int("max-inflight", 64, "concurrent forecasts before 503 shedding")
		shutdownGrace = flag.Duration("shutdown-grace", 15*time.Second, "drain period for in-flight requests on SIGINT/SIGTERM")
		residentCap   = flag.Int("resident-cap", 0, "fleet models held in memory at once (0 = all); least-recently-used models are evicted to their snapshots")
		driftThresh   = flag.Float64("drift-threshold", 50, "rolling-MAPE percentage above which a workload is drifted")
		driftFactor   = flag.Float64("drift-factor", 3, "drift when rolling MAPE exceeds this multiple of the model's stored CV error")
		rebuildWork   = flag.Int("rebuild-workers", 1, "background rebuild worker pool size (fleet mode)")
		rebuildBudget = flag.Duration("rebuild-budget", 0, "wall-clock budget per background rebuild (0 = unlimited); timed-out rebuilds checkpoint and resume")
		adminAddr     = flag.String("admin-addr", "", "operator listen address for GET /debug/metrics (e.g. 127.0.0.1:6060); empty disables. Keep it off the public port — bind to loopback or a firewalled interface")
		pprofEnabled  = flag.Bool("pprof", false, "also mount net/http/pprof on the -admin-addr mux")
	)
	flag.Parse()
	if (*modelPath == "") == (*modelsDir == "") {
		log.Fatal("exactly one of -model or -models is required")
	}
	if *pprofEnabled && *adminAddr == "" {
		log.Fatal("-pprof requires -admin-addr")
	}

	opts := serve.Options{
		ModelPath:       *modelPath,
		DefaultWorkload: *defaultWl,
		RequestTimeout:  *reqTimeout,
		MaxInFlight:     *maxInFlight,
	}
	var handler *serve.Server
	var fl *fleet.Fleet
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *modelsDir != "" {
		var err error
		fl, err = fleet.Open(fleet.Options{
			Dir:            *modelsDir,
			ResidentCap:    *residentCap,
			DriftThreshold: *driftThresh,
			DriftFactor:    *driftFactor,
			RebuildWorkers: *rebuildWork,
			RebuildBudget:  *rebuildBudget,
		})
		if err != nil {
			log.Fatal(err)
		}
		if fl.Len() == 0 {
			log.Fatalf("model directory %s has no workloads (run 'loadctl fleet' first)", *modelsDir)
		}
		handler, err = serve.NewFleet(fl, opts)
		if err != nil {
			log.Fatal(err)
		}
		fl.Start(ctx)
		defer fl.Close()
		log.Printf("serving fleet of %d workloads from %s on %s: %v", fl.Len(), *modelsDir, *addr, fl.IDs())
	} else {
		model, err := core.LoadFile(*modelPath)
		if err != nil {
			log.Fatal(err)
		}
		handler, err = serve.New(model, opts)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving model %s (validation MAPE %.1f%%) on %s", model.HP, model.ValError, *addr)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Slowloris hygiene: bound every phase of a connection's lifecycle,
		// not just body reads and writes.
		ReadTimeout:       30 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}

	// Admin mux on its own listener: metrics (and optionally pprof) never
	// share the public forecast port.
	if *adminAddr != "" {
		admin := &http.Server{
			Addr:              *adminAddr,
			Handler:           handler.Admin(*pprofEnabled),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("admin endpoint on %s (pprof=%v)", *adminAddr, *pprofEnabled)
			if err := admin.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("admin server: %v", err)
			}
		}()
	}

	// SIGHUP → hot reload of the default workload; on failure the old model
	// keeps serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := handler.Reload(); err != nil {
				log.Printf("reload failed, keeping current model: %v", err)
				continue
			}
			m := handler.Model()
			log.Printf("reloaded model %s (validation MAPE %.1f%%)", m.HP, m.ValError)
		}
	}()

	// SIGINT/SIGTERM → graceful shutdown: stop accepting, drain in-flight
	// requests for up to the grace period, then exit.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		log.Printf("signal received, draining for up to %s", *shutdownGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		if fl != nil {
			fl.Close()
		}
		log.Print("drained, exiting")
	}
}
