// Command loadserve exposes trained LoadDynamics models as an HTTP
// forecast service — the endpoint an auto-scaler polls each interval.
//
// Single-model mode — train and save a model first, then serve it:
//
//	loadctl evaluate -kind gl -interval 30 -save model.json
//	loadserve -model model.json -addr :8080
//
// Fleet mode — build a model directory, then serve every workload in it
// with online drift detection and background self-rebuild:
//
//	loadctl fleet -kinds gl,wiki -interval 30 -out-dir models/
//	loadserve -models models/ -addr :8080 -rebuild-workers 1
//
// Endpoints: GET /healthz, GET /v1/workloads, POST
// /v1/workloads/{id}/forecast ({"history": [...], "steps": n}), POST
// /v1/workloads/{id}/observe ({"values": [...]}), GET
// /v1/workloads/{id}/model, POST /v1/observe:stream (high-throughput
// multi-workload observation ingest: NDJSON or binary-framed batches,
// drained through sharded bounded queues with 429 backpressure — see
// cmd/loadgen for the matching load generator), plus the single-model
// aliases GET /v1/model, POST /v1/forecast and POST /v1/reload for the
// default workload.
//
// Operations:
//
//   - Observed arrivals posted to the observe endpoint are scored against
//     served forecasts; a workload whose rolling error drifts past
//     -drift-threshold (or
//     -drift-factor × its stored CV error) is rebuilt in the background
//     and the new model promoted only if its CV error improves.
//   - SIGHUP (or POST /v1/reload) atomically reloads the default
//     workload's model from disk; on a corrupt file the old model keeps
//     serving.
//   - SIGINT/SIGTERM drain in-flight requests for up to -shutdown-grace
//     before exiting (fleet rebuild workers are cancelled first).
//   - Requests beyond -max-inflight concurrent forecasts are shed with 503
//     and Retry-After; forecasts exceeding -request-timeout return 504.
//   - Every request logs one structured line (-log-format json|text) with
//     a correlation ID echoed as X-Request-ID; -trace-out additionally
//     exports serve.request spans (JSONL) carrying the same IDs on exit.
//   - -admin-addr exposes the operator listener: GET /debug/metrics (JSON
//     snapshot), GET /metrics and /debug/metrics?format=prometheus
//     (Prometheus text exposition), GET /debug/slo (burn-rate state of the
//     latency/error/drift objectives) and GET /debug/health (503 while a
//     page-severity burn fires); -pprof additionally mounts
//     net/http/pprof there. Bind it to loopback.
package main

import (
	"context"
	"errors"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"loaddynamics/internal/core"
	"loaddynamics/internal/fleet"
	"loaddynamics/internal/obs"
	"loaddynamics/internal/serve"
	"loaddynamics/internal/wal"
)

func main() {
	var (
		modelPath     = flag.String("model", "", "trained model file (from 'loadctl evaluate -save'); exactly one of -model/-models is required")
		modelsDir     = flag.String("models", "", "fleet model directory (from 'loadctl fleet'); exactly one of -model/-models is required")
		defaultWl     = flag.String("default-workload", "", "workload the single-model alias routes serve (default: \"default\", else the first workload)")
		addr          = flag.String("addr", ":8080", "listen address")
		reqTimeout    = flag.Duration("request-timeout", 10*time.Second, "per-forecast computation budget")
		maxInFlight   = flag.Int("max-inflight", 64, "concurrent forecasts before 503 shedding")
		cacheTTL      = flag.Duration("forecast-cache-ttl", 0, "serve identical (workload, window, steps) forecasts from memory for this long (0 disables); promotions and reloads invalidate")
		cacheCap      = flag.Int("forecast-cache-cap", 4096, "forecast cache entries held before LRU eviction (with -forecast-cache-ttl > 0)")
		shutdownGrace = flag.Duration("shutdown-grace", 15*time.Second, "drain period for in-flight requests on SIGINT/SIGTERM")
		residentCap   = flag.Int("resident-cap", 0, "fleet models held in memory at once (0 = all); least-recently-used models are evicted to their snapshots")
		driftThresh   = flag.Float64("drift-threshold", 50, "rolling-MAPE percentage above which a workload is drifted")
		driftFactor   = flag.Float64("drift-factor", 3, "drift when rolling MAPE exceeds this multiple of the model's stored CV error")
		rebuildWork   = flag.Int("rebuild-workers", 1, "background rebuild worker pool size (fleet mode)")
		rebuildBudget = flag.Duration("rebuild-budget", 0, "wall-clock budget per background rebuild (0 = unlimited); timed-out rebuilds checkpoint and resume")
		rebuildBack   = flag.Duration("rebuild-backoff", 30*time.Second, "base delay before retrying a failed workload rebuild; doubles per consecutive failure with jitter (fleet mode)")
		warmStartK    = flag.Int("warm-start-k", 3, "fingerprint-nearest sibling workloads whose tuned hyperparameters seed each rebuild's search (fleet mode; <= 0 disables warm-starting)")
		walDir        = flag.String("wal-dir", "", "observation write-ahead log directory (fleet mode); observations replay into evaluator state on restart. Empty disables the WAL")
		walFsync      = flag.String("wal-fsync", "always", "WAL fsync policy: \"always\" (every record), \"off\", or an interval like \"250ms\"")
		ingestShards  = flag.Int("ingest-shards", 8, "evaluator shards for streaming ingest; each owns a bounded queue and one drain worker (fleet mode)")
		ingestQueue   = flag.Int("ingest-queue", 1024, "per-shard ingest queue depth; a full queue sheds /v1/observe:stream records with 429")
		maxStreamBody = flag.Int64("max-stream-bytes", 64<<20, "largest /v1/observe:stream request body accepted")
		retryAfter    = flag.Duration("retry-after", time.Second, "base Retry-After hint on shed 503s; scales with sustained shedding up to -retry-after-max")
		retryAfterMax = flag.Duration("retry-after-max", 30*time.Second, "cap on the pressure-scaled Retry-After hint")
		adminAddr     = flag.String("admin-addr", "", "operator listen address for /metrics, /debug/metrics, /debug/slo and /debug/health (e.g. 127.0.0.1:6060); empty disables. Keep it off the public port — bind to loopback or a firewalled interface")
		pprofEnabled  = flag.Bool("pprof", false, "also mount net/http/pprof on the -admin-addr mux")
		logLevel      = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
		logFormat     = flag.String("log-format", "json", "log encoding: json or text")
		sloLatencyP99 = flag.Duration("slo-latency-p99", 2*time.Second, "latency objective: 99% of forecast requests complete within this bound")
		sloErrorRate  = flag.Float64("slo-error-rate", 0.01, "availability objective: allowed fraction of 5xx forecast responses")
		traceOut      = flag.String("trace-out", "", "write serve.request and fleet.rebuild spans (JSONL, with request IDs) to this file on exit")
		flightEvents  = flag.Int("flight-events", 256, "flight-recorder events kept per workload for GET /v1/workloads/{id}/timeline (0 disables causal tracing)")
		flightSample  = flag.Int("flight-sample", 1, "tail-sample routine observe events: keep every Nth per workload (drift and rebuild events always record)")
	)
	flag.Parse()

	lg, err := newLogger(*logLevel, *logFormat)
	if err != nil {
		slog.Error(err.Error())
		os.Exit(2)
	}
	slog.SetDefault(lg)
	fatal := func(msg string, args ...any) {
		lg.Error(msg, args...)
		os.Exit(1)
	}
	if (*modelPath == "") == (*modelsDir == "") {
		fatal("exactly one of -model or -models is required")
	}
	if *pprofEnabled && *adminAddr == "" {
		fatal("-pprof requires -admin-addr")
	}

	var trace *obs.Trace
	if *traceOut != "" {
		trace = obs.NewTrace()
	}
	var flight *obs.FlightRecorder
	if *flightEvents > 0 {
		flight = obs.NewFlightRecorder(obs.FlightRecorderOptions{
			Cap:         *flightEvents,
			SampleEvery: *flightSample,
		})
	}
	syncPolicy, syncEvery, err := wal.ParseSyncPolicy(*walFsync)
	if err != nil {
		fatal(err.Error())
	}
	if *walDir != "" && *modelsDir == "" {
		fatal("-wal-dir requires fleet mode (-models)")
	}
	opts := serve.Options{
		ModelPath:        *modelPath,
		DefaultWorkload:  *defaultWl,
		RequestTimeout:   *reqTimeout,
		MaxInFlight:      *maxInFlight,
		RetryAfterBase:   *retryAfter,
		RetryAfterMax:    *retryAfterMax,
		ForecastCacheTTL: *cacheTTL,
		ForecastCacheCap: *cacheCap,
		MaxStreamBytes:   *maxStreamBody,
		Logger:           lg,
		Trace:            trace,
		Flight:           flight,
		SLOLatencyP99:    *sloLatencyP99,
		SLOErrorRate:     *sloErrorRate,
		SLODriftMAPE:     *driftThresh,
	}
	var handler *serve.Server
	var fl *fleet.Fleet
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *modelsDir != "" {
		fl, err = fleet.Open(fleet.Options{
			Dir:            *modelsDir,
			ResidentCap:    *residentCap,
			DriftThreshold: *driftThresh,
			DriftFactor:    *driftFactor,
			RebuildWorkers: *rebuildWork,
			RebuildBudget:  *rebuildBudget,
			RebuildBackoff: *rebuildBack,
			WarmStartK:     warmStartKOption(*warmStartK),
			IngestShards:   *ingestShards,
			IngestQueue:    *ingestQueue,
			WAL: wal.Options{
				Dir:          *walDir,
				Sync:         syncPolicy,
				SyncInterval: syncEvery,
			},
			Logger: lg,
			Trace:  trace,
			Flight: flight,
		})
		if err != nil {
			fatal(err.Error())
		}
		if fl.Len() == 0 {
			fatal("model directory has no workloads (run 'loadctl fleet' first)", "dir", *modelsDir)
		}
		handler, err = serve.NewFleet(fl, opts)
		if err != nil {
			fatal(err.Error())
		}
		fl.Start(ctx)
		fl.StartIngest()
		defer fl.Close()
		lg.Info("serving fleet",
			obs.LogComponent, "loadserve",
			"workloads", fl.Len(), "dir", *modelsDir, "addr", *addr, "ids", fl.IDs(),
			"wal_dir", *walDir, "wal_fsync", *walFsync)
	} else {
		model, err := core.LoadFile(*modelPath)
		if err != nil {
			fatal(err.Error())
		}
		handler, err = serve.New(model, opts)
		if err != nil {
			fatal(err.Error())
		}
		lg.Info("serving model",
			obs.LogComponent, "loadserve",
			"hp", model.HP.String(), "validation_mape", model.ValError, "addr", *addr)
	}
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Slowloris hygiene: bound every phase of a connection's lifecycle,
		// not just body reads and writes.
		ReadTimeout:       30 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}

	// Admin mux on its own listener: metrics, SLO state and optionally
	// pprof never share the public forecast port. The runtime collector and
	// SLO sampler only run when there is an admin listener to read them.
	if *adminAddr != "" {
		handler.StartTelemetry(ctx, 0)
		admin := &http.Server{
			Addr:              *adminAddr,
			Handler:           handler.Admin(*pprofEnabled),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			lg.Info("admin endpoint up",
				obs.LogComponent, "loadserve", "addr", *adminAddr, "pprof", *pprofEnabled)
			if err := admin.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fatal("admin server failed", "error", err.Error())
			}
		}()
	}

	// SIGHUP → hot reload of the default workload; on failure the old model
	// keeps serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := handler.Reload(); err != nil {
				lg.Warn("reload failed, keeping current model",
					obs.LogComponent, "loadserve", "error", err.Error())
				continue
			}
			m := handler.Model()
			lg.Info("model reloaded",
				obs.LogComponent, "loadserve",
				"hp", m.HP.String(), "validation_mape", m.ValError)
		}
	}()

	// SIGINT/SIGTERM → graceful shutdown: stop accepting, drain in-flight
	// requests for up to the grace period, then exit.
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		fatal(err.Error())
	case <-ctx.Done():
		lg.Info("signal received, draining",
			obs.LogComponent, "loadserve", "grace", shutdownGrace.String())
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			fatal("shutdown failed", "error", err.Error())
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err.Error())
		}
		if fl != nil {
			fl.Close()
		}
		writeTrace(lg, trace, *traceOut)
		lg.Info("drained, exiting", obs.LogComponent, "loadserve")
	}
}

// newLogger builds the process logger from the -log-level/-log-format
// flags.
// warmStartKOption maps the flag convention (<= 0 disables) onto
// fleet.Options.WarmStartK (0 means "use the default", negative disables).
func warmStartKOption(k int) int {
	if k <= 0 {
		return -1
	}
	return k
}

func newLogger(level, format string) (*slog.Logger, error) {
	lvl, err := obs.ParseLogLevel(level)
	if err != nil {
		return nil, err
	}
	return obs.NewLogger(os.Stderr, lvl, format)
}

// writeTrace exports the request/rebuild span trace on exit. A trace-write
// failure is reported but not fatal.
func writeTrace(lg *slog.Logger, tr *obs.Trace, path string) {
	if tr == nil || path == "" {
		return
	}
	if err := tr.WriteFile(path); err != nil {
		lg.Warn("writing trace file", obs.LogComponent, "loadserve", "error", err.Error())
		return
	}
	lg.Info("trace written",
		obs.LogComponent, "loadserve", "spans", tr.Len(), "path", path)
}
