// Command loadserve exposes a trained LoadDynamics model as an HTTP
// forecast service — the endpoint an auto-scaler polls each interval.
//
// Train and save a model first, then serve it:
//
//	loadctl evaluate -kind gl -interval 30 -save model.json
//	loadserve -model model.json -addr :8080
//
// Endpoints: GET /healthz, GET /v1/model, POST /v1/forecast
// ({"history": [...], "steps": n}), POST /v1/reload.
//
// Operations:
//
//   - SIGHUP (or POST /v1/reload) atomically reloads the model from the
//     -model file; on a corrupt file the old model keeps serving.
//   - SIGINT/SIGTERM drain in-flight requests for up to -shutdown-grace
//     before exiting.
//   - Requests beyond -max-inflight concurrent forecasts are shed with 503
//     and Retry-After; forecasts exceeding -request-timeout return 504.
//   - -admin-addr exposes GET /debug/metrics (request counters, latency
//     quantiles, in-flight gauge) on a separate operator listener; -pprof
//     additionally mounts net/http/pprof there. Bind it to loopback.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"loaddynamics/internal/core"
	"loaddynamics/internal/serve"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadserve: ")
	var (
		modelPath     = flag.String("model", "", "trained model file (from 'loadctl evaluate -save'), required")
		addr          = flag.String("addr", ":8080", "listen address")
		reqTimeout    = flag.Duration("request-timeout", 10*time.Second, "per-forecast computation budget")
		maxInFlight   = flag.Int("max-inflight", 64, "concurrent forecasts before 503 shedding")
		shutdownGrace = flag.Duration("shutdown-grace", 15*time.Second, "drain period for in-flight requests on SIGINT/SIGTERM")
		adminAddr     = flag.String("admin-addr", "", "operator listen address for GET /debug/metrics (e.g. 127.0.0.1:6060); empty disables. Keep it off the public port — bind to loopback or a firewalled interface")
		pprofEnabled  = flag.Bool("pprof", false, "also mount net/http/pprof on the -admin-addr mux")
	)
	flag.Parse()
	if *modelPath == "" {
		log.Fatal("-model is required")
	}
	model, err := core.LoadFile(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	handler, err := serve.New(model, serve.Options{
		ModelPath:      *modelPath,
		RequestTimeout: *reqTimeout,
		MaxInFlight:    *maxInFlight,
	})
	if err != nil {
		log.Fatal(err)
	}
	if *pprofEnabled && *adminAddr == "" {
		log.Fatal("-pprof requires -admin-addr")
	}
	log.Printf("serving model %s (validation MAPE %.1f%%) on %s", model.HP, model.ValError, *addr)
	srv := &http.Server{
		Addr:    *addr,
		Handler: handler,
		// Slowloris hygiene: bound every phase of a connection's lifecycle,
		// not just body reads and writes.
		ReadTimeout:       30 * time.Second,
		ReadHeaderTimeout: 5 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		MaxHeaderBytes:    1 << 20,
	}

	// Admin mux on its own listener: metrics (and optionally pprof) never
	// share the public forecast port.
	if *adminAddr != "" {
		admin := &http.Server{
			Addr:              *adminAddr,
			Handler:           handler.Admin(*pprofEnabled),
			ReadHeaderTimeout: 5 * time.Second,
		}
		go func() {
			log.Printf("admin endpoint on %s (pprof=%v)", *adminAddr, *pprofEnabled)
			if err := admin.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				log.Fatalf("admin server: %v", err)
			}
		}()
	}

	// SIGHUP → hot reload; on failure the old model keeps serving.
	hup := make(chan os.Signal, 1)
	signal.Notify(hup, syscall.SIGHUP)
	go func() {
		for range hup {
			if err := handler.Reload(); err != nil {
				log.Printf("reload failed, keeping current model: %v", err)
				continue
			}
			m := handler.Model()
			log.Printf("reloaded model %s (validation MAPE %.1f%%)", m.HP, m.ValError)
		}
	}()

	// SIGINT/SIGTERM → graceful shutdown: stop accepting, drain in-flight
	// requests for up to the grace period, then exit.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		log.Fatal(err)
	case <-ctx.Done():
		log.Printf("signal received, draining for up to %s", *shutdownGrace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *shutdownGrace)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			log.Fatalf("shutdown: %v", err)
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatal(err)
		}
		log.Print("drained, exiting")
	}
}
