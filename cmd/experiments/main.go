// Command experiments regenerates every table and figure of the paper's
// evaluation section. Each artifact is printed as a text table (and
// optionally written to a directory as .txt/.csv files).
//
// Usage:
//
//	experiments -scale quick                 # all artifacts, laptop scale
//	experiments -scale full -only fig9       # paper-scale Fig. 9 only
//	experiments -only fig2,fig10 -out report # write files to ./report
//
// Scales: tiny (seconds), quick (minutes, default), full (the paper's
// settings — hours of CPU for fig9).
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"path/filepath"
	"strings"

	"loaddynamics/internal/core"
	"loaddynamics/internal/experiments"
	"loaddynamics/internal/obs"
	"loaddynamics/internal/traces"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")
	var (
		scaleName = flag.String("scale", "quick", "experiment scale: tiny, quick or full")
		only      = flag.String("only", "", "comma-separated artifact list (fig1,fig2,fig5,fig8,fig9,fig10,tab1,tab3,tab4,ablation,telemetry); empty = all")
		outDir    = flag.String("out", "", "directory to write artifact files into (default: stdout only)")
		seed      = flag.Int64("seed", 42, "base random seed")
		serial    = flag.Bool("serial", false, "force serial candidate evaluation (Parallel=1) for exactly reproducible searches")
		candTO    = flag.Duration("candidate-timeout", 0, "per-candidate training time limit (0 = unlimited); slow candidates are quarantined as failed")
	)
	flag.Parse()

	sc, err := scaleByName(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	sc.Seed = *seed
	if *serial {
		sc.Parallel = 1
	}
	sc.CandidateTimeout = *candTO

	want := map[string]bool{}
	if *only != "" {
		for _, a := range strings.Split(*only, ",") {
			want[strings.TrimSpace(a)] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			log.Fatal(err)
		}
	}

	run := func(name string, fn func(w io.Writer) error) {
		if !selected(name) {
			return
		}
		var sink io.Writer = os.Stdout
		var file *os.File
		if *outDir != "" {
			f, err := os.Create(filepath.Join(*outDir, name+".txt"))
			if err != nil {
				log.Fatal(err)
			}
			file = f
			sink = io.MultiWriter(os.Stdout, f)
		}
		fmt.Fprintf(os.Stdout, "\n== %s (scale=%s) ==\n", name, sc.Name)
		if err := fn(sink); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		if file != nil {
			if err := file.Close(); err != nil {
				log.Fatal(err)
			}
		}
	}

	run("tab1", func(w io.Writer) error {
		experiments.WriteTable1(w)
		return nil
	})
	run("tab3", func(w io.Writer) error {
		writeTable3(w)
		return nil
	})
	run("fig1", func(w io.Writer) error { return writeTraces(w, 1, sc, *outDir) })
	run("fig8", func(w io.Writer) error { return writeTraces(w, 8, sc, *outDir) })
	run("fig2", func(w io.Writer) error {
		rows, err := experiments.Fig2(sc)
		if err != nil {
			return err
		}
		experiments.WriteFig2(w, rows)
		return nil
	})
	run("fig5", func(w io.Writer) error {
		pts, err := experiments.Fig5(sc)
		if err != nil {
			return err
		}
		experiments.WriteFig5(w, pts)
		return nil
	})
	var fig9 *experiments.Fig9Result
	run("fig9", func(w io.Writer) error {
		res, err := experiments.Fig9(traces.Configurations(), sc)
		if err != nil {
			return err
		}
		fig9 = res
		experiments.WriteFig9(w, res)
		return nil
	})
	run("tab4", func(w io.Writer) error {
		if fig9 == nil {
			res, err := experiments.Fig9(traces.Configurations(), sc)
			if err != nil {
				return err
			}
			fig9 = res
		}
		experiments.WriteTable4(w, experiments.Table4(fig9.Rows))
		return nil
	})
	run("fig10", func(w io.Writer) error {
		rows, err := experiments.Fig10(sc)
		if err != nil {
			return err
		}
		experiments.WriteFig10(w, rows)
		return nil
	})
	run("ablation", func(w io.Writer) error {
		cfg := traces.WorkloadConfig{Kind: traces.Google, IntervalMinutes: 30}
		search, err := experiments.AblationSearchStrategies(cfg, sc)
		if err != nil {
			return err
		}
		experiments.WriteAblation(w, "Ablation — search strategies (Sec. III-A)", search)
		scalers, err := experiments.AblationScalers(cfg, sc,
			core.Hyperparams{HistoryLen: 16, CellSize: 8, Layers: 1, BatchSize: 32})
		if err != nil {
			return err
		}
		experiments.WriteAblation(w, "Ablation — input scalers", scalers)
		par, err := experiments.AblationParallelism(cfg, sc, []int{1, 4})
		if err != nil {
			return err
		}
		experiments.WriteAblation(w, "Ablation — parallel candidate evaluation", par)
		acq, err := experiments.AblationAcquisitions(cfg, sc)
		if err != nil {
			return err
		}
		experiments.WriteAblation(w, "Ablation — BO acquisition functions", acq)
		ret, err := experiments.AblationRetention(sc, []int{0, 2, 4})
		if err != nil {
			return err
		}
		experiments.WriteRetention(w, ret)
		return nil
	})
	// Last so the snapshot covers every artifact built above: how many
	// candidates trained, quarantine/timeout rates, GP fit and epoch
	// duration quantiles.
	run("telemetry", func(w io.Writer) error {
		experiments.WriteTelemetry(w, obs.Default.Snapshot())
		return nil
	})
}

func scaleByName(name string) (experiments.Scale, error) {
	switch name {
	case "tiny":
		return experiments.Tiny(), nil
	case "quick":
		return experiments.Quick(), nil
	case "full":
		return experiments.Full(), nil
	default:
		return experiments.Scale{}, fmt.Errorf("unknown scale %q (tiny, quick, full)", name)
	}
}

// writeTraces prints a short summary of each Fig. 1 / Fig. 8 trace and, when
// an output directory is configured, writes the full series as CSV so the
// plots can be regenerated.
func writeTraces(w io.Writer, figure int, sc experiments.Scale, outDir string) error {
	series, err := experiments.TraceSeries(figure, sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "Fig. %d — workload traces\n", figure)
	for _, s := range series {
		minV, maxV := s.Values[0], s.Values[0]
		var sum float64
		for _, v := range s.Values {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
			sum += v
		}
		fmt.Fprintf(w, "%-10s intervals=%d interval=%v mean=%.0f min=%.0f max=%.0f\n",
			s.Name, s.Len(), s.Interval, sum/float64(s.Len()), minV, maxV)
		if outDir != "" {
			path := filepath.Join(outDir, fmt.Sprintf("fig%d_%s.csv", figure, s.Name))
			if err := traces.SaveFile(path, s); err != nil {
				return err
			}
			fmt.Fprintf(w, "  series written to %s\n", path)
		}
	}
	return nil
}

// writeTable3 prints the hyperparameter search spaces of Table III.
func writeTable3(w io.Writer) {
	fmt.Fprintln(w, "Table III — hyperparameter search space and optimization budget")
	fmt.Fprintf(w, "%-10s %12s %8s %8s %10s %9s\n", "workload", "hist len n", "C size", "layers", "batch", "maxIters")
	def := core.DefaultSearchSpace()
	fb := core.FacebookSearchSpace()
	row := func(name string, s []string) {
		fmt.Fprintf(w, "%-10s %12s %8s %8s %10s %9d\n", name, s[0], s[1], s[2], s[3], 100)
	}
	row("default", []string{
		rangeStr(def.Params[0].Min, def.Params[0].Max),
		rangeStr(def.Params[1].Min, def.Params[1].Max),
		rangeStr(def.Params[2].Min, def.Params[2].Max),
		rangeStr(def.Params[3].Min, def.Params[3].Max),
	})
	row("facebook", []string{
		rangeStr(fb.Params[0].Min, fb.Params[0].Max),
		rangeStr(fb.Params[1].Min, fb.Params[1].Max),
		rangeStr(fb.Params[2].Min, fb.Params[2].Max),
		rangeStr(fb.Params[3].Min, fb.Params[3].Max),
	})
	fmt.Fprintln(w, `(default applies to wiki, lcg, az, gl; "facebook" is the scaled-down space)`)
}

func rangeStr(lo, hi int) string { return fmt.Sprintf("[%d-%d]", lo, hi) }
