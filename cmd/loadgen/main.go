// Command loadgen replays synthetic workload traces against a running
// loadserve instance as high-rate observation ingest — the fleet-under-fire
// harness. It paces records at a steady rate with optional square-wave
// bursts, fans them out over a worker pool on one of three transports
// (NDJSON stream, binary-framed stream, or per-record observe), and can
// ride a drift probe alongside the load to measure how fast the server
// notices a shifted workload.
//
// Usage:
//
//	loadgen -base-url http://localhost:8080 -workloads gl,wiki,az \
//	    -mode stream -base-rps 5000 -burst-rps 20000 \
//	    -burst-every 10s -burst-len 2s -duration 60s -probe gl
//
// Progress lines go to stderr every -report-every; the final report is
// JSON on stdout (records sent/accepted/rejected/shed/errors, accepted
// RPS, request latency p50/p99, drift-detection latency).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"loaddynamics/internal/loadgen"
	"loaddynamics/internal/traces"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("loadgen: ")

	baseURL := flag.String("base-url", "http://localhost:8080", "server base URL")
	workloads := flag.String("workloads", "", "comma-separated workload IDs to replay into (required)")
	mode := flag.String("mode", "stream", "ingest transport: stream, frames, observe")
	trace := flag.String("trace", "gl", "trace family replayed as values: wiki, lcg, az, gl, fb")
	baseRPS := flag.Int("base-rps", 500, "steady-state records per second")
	burstRPS := flag.Int("burst-rps", 0, "burst records per second (0 = no bursts)")
	burstEvery := flag.Duration("burst-every", 10*time.Second, "burst period")
	burstLen := flag.Duration("burst-len", 2*time.Second, "burst length within each period")
	workers := flag.Int("workers", 4, "request worker pool size")
	chunk := flag.Int("chunk", 128, "records per stream request")
	values := flag.Int("values", 1, "trace values per record")
	duration := flag.Duration("duration", 30*time.Second, "run length")
	seed := flag.Int64("seed", 1, "trace replay seed")
	probe := flag.String("probe", "", "workload to drift-probe alongside the load (optional)")
	reportEvery := flag.Duration("report-every", 2*time.Second, "progress line period (0 = quiet)")
	flag.Parse()

	if *workloads == "" {
		flag.Usage()
		os.Exit(2)
	}
	g, err := loadgen.New(loadgen.Config{
		BaseURL:         strings.TrimSuffix(*baseURL, "/"),
		Workloads:       strings.Split(*workloads, ","),
		Mode:            loadgen.Mode(*mode),
		Trace:           traces.Kind(*trace),
		BaseRPS:         *baseRPS,
		BurstRPS:        *burstRPS,
		BurstEvery:      *burstEvery,
		BurstLen:        *burstLen,
		Workers:         *workers,
		Chunk:           *chunk,
		ValuesPerRecord: *values,
		Duration:        *duration,
		Seed:            *seed,
		DriftProbe:      *probe,
		ReportEvery:     *reportEvery,
		ReportW:         os.Stderr,
	})
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	report, err := g.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	out, _ := json.MarshalIndent(report, "", "  ")
	fmt.Println(string(out))
	if report.Errors > 0 {
		os.Exit(1)
	}
}
