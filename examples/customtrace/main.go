// Customtrace: bring your own workload. This example shows the data
// pipeline for users with real traces: write/read CSV, re-aggregate to a
// coarser interval, inspect seasonality with the autocorrelation function,
// and train a predictor with explicitly chosen hyperparameters (no search)
// — useful when you already know a good configuration.
//
// Run with:
//
//	go run ./examples/customtrace
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"loaddynamics/internal/core"
	"loaddynamics/internal/timeseries"
	"loaddynamics/internal/traces"
)

func main() {
	log.SetFlags(0)

	// Pretend this CSV came from your own monitoring system: a 5-minute
	// request-count series with a daily cycle and noise.
	dir, err := os.MkdirTemp("", "loaddynamics-example")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "mytrace.csv")
	writeDemoTrace(path)

	// 1. Load the CSV (any file whose last column is the per-interval
	//    count works; a header row is tolerated).
	series, err := traces.LoadFile(path, "mytrace", 5*time.Minute)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loaded %d intervals at %v\n", series.Len(), series.Interval)

	// 2. Re-aggregate to 30-minute intervals (sums the counts).
	agg, err := series.Reinterval(6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-aggregated to %d intervals at %v\n", agg.Len(), agg.Interval)

	// 3. Check for seasonality: the ACF at a one-day lag tells you whether
	//    a long history window will pay off.
	dayLag := int(24 * time.Hour / agg.Interval)
	acf := timeseries.ACF(agg.Values, dayLag)
	fmt.Printf("autocorrelation at 1-day lag: %.2f\n", acf[dayLag])

	// 4. Train with explicit hyperparameters — here a history of one day.
	split := timeseries.DefaultSplit(agg)
	hp := core.Hyperparams{HistoryLen: dayLag, CellSize: 8, Layers: 1, BatchSize: 32}
	model, err := core.TrainSingle(core.Config{Seed: 3}, split.Train.Values, split.Validate.Values, hp)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained %s: validation MAPE %.1f%% (%d weights)\n", hp, model.ValError, model.NumParams())

	known := append(append([]float64{}, split.Train.Values...), split.Validate.Values...)
	testMAPE, err := model.Evaluate(known, split.Test.Values)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test MAPE: %.1f%%\n", testMAPE)

	next, err := model.Predict(agg.Values)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("next interval forecast: %.0f requests\n", next)
}

// writeDemoTrace synthesizes the "user's" raw CSV.
func writeDemoTrace(path string) {
	rng := rand.New(rand.NewSource(11))
	n := 6 * 288 // six days of 5-minute intervals
	vals := make([]float64, n)
	for i := range vals {
		day := 2 * math.Pi * float64(i%288) / 288
		vals[i] = math.Max(0, math.Round(500+200*math.Sin(day-1.5)+20*rng.NormFloat64()))
	}
	s := timeseries.NewSeries("demo", 5*time.Minute, vals)
	if err := traces.SaveFile(path, s); err != nil {
		log.Fatal(err)
	}
}
