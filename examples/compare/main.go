// Compare: evaluate LoadDynamics against the three state-of-the-art
// baselines (CloudInsight, CloudScale, Wood et al.) on several workload
// configurations — a miniature of the paper's Fig. 9.
//
// Run with:
//
//	go run ./examples/compare
package main

import (
	"fmt"
	"log"

	"loaddynamics/internal/experiments"
	"loaddynamics/internal/traces"
)

func main() {
	log.SetFlags(0)

	// One configuration per workload type keeps the example fast; swap in
	// traces.Configurations() for the full 14-configuration sweep.
	cfgs := []traces.WorkloadConfig{
		{Kind: traces.Wikipedia, IntervalMinutes: 30}, // strongly seasonal web load
		{Kind: traces.Google, IntervalMinutes: 30},    // spiky data-center load
		{Kind: traces.Azure, IntervalMinutes: 60},     // regime-changing cloud load
	}

	sc := experiments.Tiny() // seconds per configuration; use Quick()/Full() for fidelity
	fmt.Printf("scale=%s (budget: %d BO iterations, %d-day traces)\n\n",
		sc.Name, sc.MaxIters, sc.DaysFor(cfgs[1]))

	fmt.Printf("%-10s %14s %14s %12s %8s\n", "config", "loaddynamics", "cloudinsight", "cloudscale", "wood")
	for _, cfg := range cfgs {
		w, err := experiments.BuildWorkload(cfg, sc)
		if err != nil {
			log.Fatal(err)
		}
		_, ld, err := experiments.BuildLoadDynamics(w, sc)
		if err != nil {
			log.Fatal(err)
		}
		ci, err := experiments.EvalBaseline(experiments.CloudInsight, w, sc.BaselineLag)
		if err != nil {
			log.Fatal(err)
		}
		cs, err := experiments.EvalBaseline(experiments.CloudScale, w, sc.BaselineLag)
		if err != nil {
			log.Fatal(err)
		}
		wd, err := experiments.EvalBaseline(experiments.Wood, w, sc.BaselineLag)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %13.1f%% %13.1f%% %11.1f%% %7.1f%%\n", cfg.Name(), ld, ci, cs, wd)
	}
	fmt.Println("\n(values are test-set MAPE; lower is better)")
}
