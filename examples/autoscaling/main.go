// Autoscaling: drive the predictive VM-provisioning policy of the paper's
// Section IV-C case study with different predictors and compare job
// turnaround time and provisioning waste — a miniature of Fig. 10,
// including the perfect-knowledge oracle as a lower bound.
//
// Run with:
//
//	go run ./examples/autoscaling
package main

import (
	"fmt"
	"log"
	"math"

	"loaddynamics/internal/autoscale"
	"loaddynamics/internal/experiments"
	"loaddynamics/internal/timeseries"
	"loaddynamics/internal/traces"
)

func main() {
	log.SetFlags(0)

	// The case-study workload: Azure at 60-minute intervals, scaled so at
	// most ~45 jobs arrive per interval (the paper's Google Cloud quota
	// constraint).
	sc := experiments.Tiny()
	w, err := experiments.BuildWorkload(traces.WorkloadConfig{Kind: traces.Azure, IntervalMinutes: 60}, sc)
	if err != nil {
		log.Fatal(err)
	}
	maxV := 0.0
	for _, v := range w.Series.Values {
		maxV = math.Max(maxV, v)
	}
	if maxV > 45 {
		f := 45 / maxV
		for i, v := range w.Series.Values {
			w.Series.Values[i] = math.Round(v * f)
		}
		w.Split = timeseries.DefaultSplit(w.Series)
	}

	known := w.Known()
	test := w.Split.Test.Values
	simCfg := autoscale.DefaultSimConfig()
	simCfg.Seed = 7

	fmt.Printf("simulating %d hourly intervals, %d jobs total demand\n\n", len(test), int(sum(test)))
	fmt.Printf("%-14s %12s %10s %10s %10s\n", "predictor", "turnaround", "under %", "over %", "pred MAPE")

	// Perfect-knowledge oracle: the policy's lower bound.
	oracle := &autoscale.Oracle{Horizon: test, History: len(known)}
	report("oracle", oracle, known, test, 0, simCfg)

	// LoadDynamics, trained on the train/validate partitions.
	ldRes, _, err := experiments.BuildLoadDynamics(w, sc)
	if err != nil {
		log.Fatal(err)
	}
	report("loaddynamics", ldRes.Best, known, test, 0, simCfg)

	// The two baselines the paper kept for this experiment.
	for _, name := range []experiments.BaselineName{experiments.CloudInsight, experiments.Wood} {
		p, err := experiments.NewBaseline(name, sc.BaselineLag)
		if err != nil {
			log.Fatal(err)
		}
		if err := p.Fit(known); err != nil {
			log.Fatal(err)
		}
		report(string(name), p, known, test, 5, simCfg)
	}
}

func report(name string, p interface {
	Name() string
	Fit([]float64) error
	Predict([]float64) (float64, error)
}, known, test []float64, refit int, cfg autoscale.SimConfig) {
	m, err := autoscale.Simulate(p, known, test, refit, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-14s %12s %10.1f %10.1f %10.1f\n",
		name, experiments.FormatTurnaround(m.AvgTurnaround),
		m.UnderProvisionRate, m.OverProvisionRate, m.PredMAPE)
}

func sum(xs []float64) float64 {
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s
}
