// Quickstart: build a LoadDynamics predictor for a workload trace and use
// it to forecast the next intervals.
//
// The example synthesizes a Wikipedia-style web workload at 30-minute
// intervals, partitions it 60/20/20 (train / cross-validation / test),
// runs the self-optimizing workflow (LSTM + Bayesian hyperparameter
// search), and reports the selected hyperparameters and the test accuracy.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"loaddynamics/internal/core"
	"loaddynamics/internal/timeseries"
	"loaddynamics/internal/traces"
)

func main() {
	log.SetFlags(0)

	// 1. Obtain a workload trace. Any JAR series works — here we generate
	//    4 days of the Wikipedia-like web workload at 30-minute intervals.
	cfg := traces.WorkloadConfig{Kind: traces.Wikipedia, IntervalMinutes: 30}
	series, err := cfg.Build(4, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d intervals of %v\n", series.Name, series.Len(), series.Interval)

	// 2. Partition it the way the paper does: 60% training, 20%
	//    cross-validation (drives hyperparameter optimization), 20% test.
	split := timeseries.DefaultSplit(series)

	// 3. Build the predictor. The framework trains LSTMs with candidate
	//    hyperparameters and lets Bayesian Optimization navigate the search
	//    space; this example uses a small budget so it finishes in seconds.
	framework, err := core.New(core.Config{
		Space:      core.ScaledSpace(48, 16, 2, 64),
		MaxIters:   8,
		InitPoints: 4,
		Seed:       1,
		Scaler:     "minmax",
		Parallel:   4,
	})
	if err != nil {
		log.Fatal(err)
	}
	res, err := framework.Build(split.Train.Values, split.Validate.Values)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d hyperparameter sets\n", len(res.Database))
	fmt.Printf("selected: %s (validation MAPE %.1f%%)\n", res.Best.HP, res.Best.ValError)

	// 4. Measure accuracy on the held-out test horizon.
	known := append(append([]float64{}, split.Train.Values...), split.Validate.Values...)
	testMAPE, err := res.Best.Evaluate(known, split.Test.Values)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("test MAPE over %d intervals: %.1f%%\n", split.Test.Len(), testMAPE)

	// 5. Forecast the next three intervals beyond the trace.
	history := append([]float64(nil), series.Values...)
	for i := 1; i <= 3; i++ {
		next, err := res.Best.Predict(history)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("forecast t+%d: %.0f requests\n", i, next)
		history = append(history, next)
	}
}
