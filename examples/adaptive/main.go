// Adaptive: the "Online Adaptive Modeling" extension sketched in the
// paper's Section V. A static LoadDynamics model degrades when the workload
// shifts to a pattern absent from its training data; the adaptive wrapper
// watches the rolling prediction error and re-runs the optimization
// workflow on recent data when drift is detected.
//
// The example streams a workload that abruptly changes pattern (level,
// amplitude and period all shift) and prints the rolling error of a static
// model versus the adaptive one.
//
// Run with:
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"math"

	"loaddynamics/internal/core"
)

func main() {
	log.SetFlags(0)

	// A workload whose pattern hard-switches at interval 260.
	const change = 260
	series := make([]float64, 560)
	for i := range series {
		if i < change {
			series[i] = 1000 + 300*math.Sin(2*math.Pi*float64(i)/24)
		} else {
			series[i] = 3000 + 900*math.Sin(2*math.Pi*float64(i)/12)
		}
	}

	fw := core.Config{
		Space:      core.ScaledSpace(24, 16, 2, 64),
		MaxIters:   6,
		InitPoints: 3,
		Seed:       1,
		Scaler:     "minmax",
		Parallel:   4,
	}

	// Static model: built once on the pre-change data.
	staticF, err := core.New(fw)
	if err != nil {
		log.Fatal(err)
	}
	staticRes, err := staticF.Build(series[:180], series[180:230])
	if err != nil {
		log.Fatal(err)
	}
	static := staticRes.Best

	// Adaptive model: same initial build, plus drift detection.
	acfg := core.DefaultAdaptiveConfig(fw)
	acfg.DriftWindow = 10
	acfg.MinErrorFloor = 12
	acfg.HistoryCap = 150
	adaptive, err := core.NewAdaptive(acfg, series[:180], series[180:230])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial model: %s (validation MAPE %.1f%%)\n\n", adaptive.Model().HP, adaptive.Model().ValError)
	fmt.Printf("%-18s %12s %12s %10s\n", "intervals", "static MAPE", "adaptive MAPE", "rebuilds")

	known := append([]float64(nil), series[:230]...)
	var sErr, aErr []float64
	report := func(lo, hi int) {
		fmt.Printf("%5d-%-12d %11.1f%% %12.1f%% %10d\n",
			lo, hi, mean(sErr), mean(aErr), adaptive.Rebuilds())
		sErr, aErr = nil, nil
	}
	blockStart := 230
	for i := 230; i < len(series); i++ {
		actual := series[i]
		sp, err := static.Predict(known)
		if err != nil {
			log.Fatal(err)
		}
		ap, err := adaptive.Predict(known)
		if err != nil {
			log.Fatal(err)
		}
		sErr = append(sErr, 100*math.Abs((sp-actual)/actual))
		aErr = append(aErr, 100*math.Abs((ap-actual)/actual))
		if _, err := adaptive.Observe(actual); err != nil {
			log.Fatal(err)
		}
		known = append(known, actual)
		if (i-230+1)%55 == 0 {
			report(blockStart, i)
			blockStart = i + 1
		}
	}
	fmt.Printf("\n(the pattern changes at interval %d; the adaptive model rebuilt %d time(s))\n",
		change, adaptive.Rebuilds())
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
