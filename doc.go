// Package loaddynamics is a pure-Go reproduction of "A Self-Optimized
// Generic Workload Prediction Framework for Cloud Computing" (Jayakumar,
// Kim, Lee, Wang — IPDPS 2020).
//
// LoadDynamics predicts the job/request arrival rate of the next time
// interval for arbitrary cloud workloads. It trains LSTM forecasters whose
// hyperparameters (history length, cell size, layer count, batch size) are
// optimized per workload by Bayesian Optimization against a
// cross-validation split, so no hand-tuning is needed.
//
// The implementation lives under internal/ (one package per subsystem: the
// LSTM and its trainer, the Gaussian-process surrogate and BO loop, the 21
// baseline predictors of the CloudInsight pool, the CloudScale and Wood
// baselines, the five calibrated trace generators, and the auto-scaling
// simulator). The cmd/ binaries and examples/ programs are the public entry
// points; bench_test.go in this directory regenerates every table and
// figure of the paper's evaluation. See README.md, DESIGN.md and
// EXPERIMENTS.md.
package loaddynamics
