module loaddynamics

go 1.22
