package loaddynamics

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section, plus the ablation benches called out in DESIGN.md and
// micro-benchmarks for the heavy kernels. Each experiment benchmark runs at
// the Tiny scale so `go test -bench=.` completes in minutes; regenerate the
// paper-scale artifacts with `go run ./cmd/experiments -scale quick` (or
// -scale full). MAPE values and other figure quantities are attached to the
// benchmark output via b.ReportMetric, so a bench run doubles as a results
// table.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"loaddynamics/internal/autoscale"
	"loaddynamics/internal/bo"
	"loaddynamics/internal/core"
	"loaddynamics/internal/experiments"
	"loaddynamics/internal/gp"
	"loaddynamics/internal/mat"
	"loaddynamics/internal/nn"
	"loaddynamics/internal/traces"
)

// benchScale is the budget used by the experiment benchmarks.
func benchScale() experiments.Scale { return experiments.Tiny() }

// BenchmarkFig1Traces regenerates the Fig. 1 traces (Google, Wikipedia,
// Facebook).
func BenchmarkFig1Traces(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		series, err := experiments.TraceSeries(1, sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 3 {
			b.Fatal("wrong series count")
		}
	}
}

// BenchmarkFig8Traces regenerates the Fig. 8 traces (Azure, LCG).
func BenchmarkFig8Traces(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		series, err := experiments.TraceSeries(8, sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(series) != 2 {
			b.Fatal("wrong series count")
		}
	}
}

// BenchmarkFig2PriorPredictors regenerates Fig. 2: the three prior
// predictors on the Fig. 1 workloads. The reported metrics are the
// workload-averaged MAPEs.
func BenchmarkFig2PriorPredictors(b *testing.B) {
	sc := benchScale()
	var rows []experiments.Fig2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig2(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	var ci, cs, wd float64
	for _, r := range rows {
		ci += r.CloudInsight / float64(len(rows))
		cs += r.CloudScale / float64(len(rows))
		wd += r.Wood / float64(len(rows))
	}
	b.ReportMetric(ci, "cloudinsight-mape%")
	b.ReportMetric(cs, "cloudscale-mape%")
	b.ReportMetric(wd, "wood-mape%")
}

// BenchmarkFig5HyperparamSweep regenerates Fig. 5: the error spread of LSTM
// models with random hyperparameters on the Google workload. The metrics
// report the worst/median/best MAPE (the paper observes a ≈3× spread).
func BenchmarkFig5HyperparamSweep(b *testing.B) {
	sc := benchScale()
	var pts []experiments.SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = experiments.Fig5(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	worst, median, best := experiments.SweepSpread(pts)
	b.ReportMetric(worst, "worst-mape%")
	b.ReportMetric(median, "median-mape%")
	b.ReportMetric(best, "best-mape%")
}

// fig9BenchConfigs is a representative subset of the 14 configurations (one
// per workload type) so the benchmark finishes in minutes; the full sweep
// is cmd/experiments -only fig9.
func fig9BenchConfigs() []traces.WorkloadConfig {
	return []traces.WorkloadConfig{
		{Kind: traces.Wikipedia, IntervalMinutes: 30},
		{Kind: traces.LCG, IntervalMinutes: 30},
		{Kind: traces.Azure, IntervalMinutes: 60},
		{Kind: traces.Google, IntervalMinutes: 30},
		{Kind: traces.Facebook, IntervalMinutes: 10},
	}
}

// BenchmarkFig9Accuracy regenerates Fig. 9 (and the data for Table IV) over
// one configuration per workload. Metrics report each predictor's average
// MAPE; the paper's ordering is LoadDynamics < CloudInsight < CloudScale ≈
// Wood, with brute force ≈ LoadDynamics.
func BenchmarkFig9Accuracy(b *testing.B) {
	sc := benchScale()
	var res *experiments.Fig9Result
	for i := 0; i < b.N; i++ {
		var err error
		res, err = experiments.Fig9(fig9BenchConfigs(), sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Avg.LoadDynamics, "loaddynamics-mape%")
	b.ReportMetric(res.Avg.BruteForce, "bruteforce-mape%")
	b.ReportMetric(res.Avg.CloudInsight, "cloudinsight-mape%")
	b.ReportMetric(res.Avg.CloudScale, "cloudscale-mape%")
	b.ReportMetric(res.Avg.Wood, "wood-mape%")
}

// BenchmarkTable4SelectedHyperparams regenerates Table IV from a Fig. 9
// subset run: the spread of hyperparameters LoadDynamics selects.
func BenchmarkTable4SelectedHyperparams(b *testing.B) {
	sc := benchScale()
	var t4 []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(fig9BenchConfigs(), sc)
		if err != nil {
			b.Fatal(err)
		}
		t4 = experiments.Table4(res.Rows)
	}
	b.ReportMetric(float64(len(t4)), "workloads")
}

// BenchmarkFig10AutoScaling regenerates the Fig. 10 case study. Metrics
// report LoadDynamics' turnaround and provisioning rates.
func BenchmarkFig10AutoScaling(b *testing.B) {
	sc := benchScale()
	var rows []experiments.Fig10Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.Fig10(sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Predictor == "loaddynamics" {
			b.ReportMetric(r.Metrics.AvgTurnaround.Seconds(), "ld-turnaround-s")
			b.ReportMetric(r.Metrics.UnderProvisionRate, "ld-under%")
			b.ReportMetric(r.Metrics.OverProvisionRate, "ld-over%")
		}
	}
}

// BenchmarkAblationSearchStrategies compares BO vs random vs grid search at
// the scale budget (the Section III-A design choice).
func BenchmarkAblationSearchStrategies(b *testing.B) {
	sc := benchScale()
	cfg := traces.WorkloadConfig{Kind: traces.Google, IntervalMinutes: 30}
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationSearchStrategies(cfg, sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ValMAPE, r.Variant+"-mape%")
	}
}

// BenchmarkAblationScalers compares min-max vs z-score input scaling with
// fixed hyperparameters.
func BenchmarkAblationScalers(b *testing.B) {
	sc := benchScale()
	cfg := traces.WorkloadConfig{Kind: traces.Wikipedia, IntervalMinutes: 30}
	hp := core.Hyperparams{HistoryLen: 12, CellSize: 6, Layers: 1, BatchSize: 16}
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationScalers(cfg, sc, hp)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ValMAPE, r.Variant+"-mape%")
	}
}

// BenchmarkAblationParallelism measures serial vs parallel BO candidate
// evaluation (identical budgets).
func BenchmarkAblationParallelism(b *testing.B) {
	sc := benchScale()
	cfg := traces.WorkloadConfig{Kind: traces.Google, IntervalMinutes: 30}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationParallelism(cfg, sc, []int{1, 4})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.Elapsed.Seconds(), r.Variant+"-s")
			}
		}
	}
}

// BenchmarkAblationAcquisitions compares the EI, LCB and PI acquisition
// functions at identical budgets.
func BenchmarkAblationAcquisitions(b *testing.B) {
	sc := benchScale()
	cfg := traces.WorkloadConfig{Kind: traces.Google, IntervalMinutes: 30}
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationAcquisitions(cfg, sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.ValMAPE, r.Variant+"-mape%")
	}
}

// BenchmarkAblationRetention compares the paper's one-interval VM policy
// with retention variants under the same LoadDynamics predictor.
func BenchmarkAblationRetention(b *testing.B) {
	sc := benchScale()
	var rows []experiments.Fig10Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.AblationRetention(sc, []int{0, 3})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Policy != nil {
			b.ReportMetric(r.Metrics.UnderProvisionRate, r.Predictor+"-under%")
			b.ReportMetric(r.Policy.VMHours, r.Predictor+"-vmh")
		}
	}
}

// BenchmarkAutoScaleSimulator measures the raw simulator throughput with an
// oracle predictor.
func BenchmarkAutoScaleSimulator(b *testing.B) {
	horizon := make([]float64, 1000)
	for i := range horizon {
		horizon[i] = 30
	}
	cfg := autoscale.DefaultSimConfig()
	oracle := &autoscale.Oracle{Horizon: horizon, History: 0}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := autoscale.Simulate(oracle, nil, horizon, 0, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks for the heavy kernels ---

// BenchmarkLSTMTrainEpoch measures one training epoch of a typical
// mid-sized candidate (n=32, s=16, 2 layers, batch 32).
func BenchmarkLSTMTrainEpoch(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	net, err := nn.NewLSTM(nn.Config{InputSize: 1, HiddenSize: 16, Layers: 2, OutputSize: 1}, rng)
	if err != nil {
		b.Fatal(err)
	}
	const n, samples = 32, 256
	inputs := make([][]float64, samples)
	targets := make([]float64, samples)
	for i := range inputs {
		inputs[i] = make([]float64, n)
		for j := range inputs[i] {
			inputs[i][j] = rng.Float64()
		}
		targets[i] = rng.Float64()
	}
	tc := nn.TrainConfig{Epochs: 1, BatchSize: 32, LearningRate: 1e-3, ClipNorm: 5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Train(inputs, targets, tc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLSTMInference measures single-step prediction latency (the
// paper reports < 4.78 ms per inference).
func BenchmarkLSTMInference(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	net, err := nn.NewLSTM(nn.Config{InputSize: 1, HiddenSize: 64, Layers: 3, OutputSize: 1}, rng)
	if err != nil {
		b.Fatal(err)
	}
	hist := make([]float64, 128)
	for i := range hist {
		hist[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := net.Predict(hist); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMatMul measures the parallel matrix multiply on BO/GP-sized
// operands.
func BenchmarkMatMul(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	a := mat.New(128, 128)
	c := mat.New(128, 128)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
		c.Data[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.MatMul(a, c)
	}
}

// BenchmarkBOMinimize compares the serial search against constant-liar
// batch-parallel search on a latency-bound objective (each evaluation
// sleeps ~2 ms, standing in for an LSTM training run blocked on I/O or
// other cores). Parallel=4 should cut wall-clock by ≥2× even on one CPU.
func BenchmarkBOMinimize(b *testing.B) {
	space := bo.Space{Params: []bo.Param{
		{Name: "x", Min: 0, Max: 100},
		{Name: "y", Min: 1, Max: 64, Log: true},
		{Name: "z", Min: 0, Max: 30},
	}}
	obj := func(p []int) (float64, error) {
		time.Sleep(2 * time.Millisecond)
		dx := float64(p[0] - 30)
		dy := float64(p[1] - 8)
		dz := float64(p[2] - 11)
		return dx*dx/100 + dy*dy + dz*dz/9, nil
	}
	for _, par := range []int{1, 4} {
		name := "Serial"
		if par > 1 {
			name = fmt.Sprintf("Parallel%d", par)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opt := bo.DefaultOptions()
				opt.MaxIters = 24
				opt.InitPoints = 6
				opt.Seed = 42
				opt.Candidates = 64
				opt.Parallel = par
				if _, err := bo.Minimize(space, obj, opt); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGPAppendVsRefit measures the O(n²) incremental Cholesky update
// against the O(n³) full refit when adding one observation to an n-point
// posterior — the operation the constant-liar loop performs per batch pick.
func BenchmarkGPAppendVsRefit(b *testing.B) {
	for _, n := range []int{32, 128} {
		rng := rand.New(rand.NewSource(5))
		x := make([][]float64, n+1)
		y := make([]float64, n+1)
		for i := range x {
			x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
			y[i] = rng.Float64()
		}
		kernel := gp.Matern52{LengthScale: 0.5, Variance: 1}
		g, err := gp.Fit(x[:n], y[:n], kernel, 1e-4)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("Append/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := g.Append(x[n], y[n]); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("Refit/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := gp.Fit(x, y, kernel, 1e-4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGPFitPredict measures the Gaussian-process surrogate at the BO
// budget size (100 observations, 4 dimensions).
func BenchmarkGPFitPredict(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	const n = 100
	x := make([][]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		y[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, err := gp.Fit(x, y, gp.Matern52{LengthScale: 0.5, Variance: 1}, 1e-4)
		if err != nil {
			b.Fatal(err)
		}
		g.Predict([]float64{0.5, 0.5, 0.5, 0.5})
	}
}
