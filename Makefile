# Convenience targets; scripts/check.sh is the canonical CI gate.

.PHONY: check build test race fuzz-seeds cover bench benchdiff

check:
	./scripts/check.sh

build:
	go build ./...

test:
	go test ./...

race:
	go test -race -timeout 1800s ./internal/bo ./internal/gp ./internal/mat ./internal/nn ./internal/serve ./internal/core ./internal/obs ./internal/fleet ./internal/wal ./internal/loadgen ./internal/profile

fuzz-seeds:
	go test -run 'Fuzz' ./internal/core ./internal/serve ./internal/obs ./internal/wal ./internal/profile

cover:
	go test -cover ./internal/obs ./internal/core ./internal/serve ./internal/fleet ./internal/wal ./internal/loadgen ./internal/profile

bench:
	./scripts/bench.sh

benchdiff:
	./scripts/benchdiff.sh
