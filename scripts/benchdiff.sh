#!/usr/bin/env bash
# benchdiff.sh — compare two bench.sh JSON outputs and fail on regression.
#
#   ./scripts/benchdiff.sh [NEW] [OLD]     (default: BENCH_PR10.json BENCH_PR9.json)
#
# For every benchmark present in both files:
#   - ns/op may move at most ±TOLERANCE_PCT (default 15%) — micro-benchmark
#     noise is tolerated, a real slowdown is not;
#   - allocs/op must not increase — an extra allocation on the serving path
#     is a code change, not noise, and fails the diff outright. Decreases
#     are improvements and pass (the new count becomes the next baseline).
#
# Benchmarks present in only one file are reported but do not fail the
# diff (new PRs may add benchmarks).
set -euo pipefail
cd "$(dirname "$0")/.."

NEW=${1:-BENCH_PR10.json}
OLD=${2:-BENCH_PR9.json}
TOLERANCE_PCT=${TOLERANCE_PCT:-15}

for f in "$NEW" "$OLD"; do
    if [ ! -f "$f" ]; then
        echo "benchdiff: $f not found (run 'make bench' to produce $NEW)" >&2
        exit 1
    fi
done

# The JSON is bench.sh's own fixed one-benchmark-per-line format, so a
# line-oriented awk parse is exact, not a heuristic. Only lines carrying
# "ns_per_op" match, so the macro objects (fleet_under_fire, warm_start)
# are ignored, and extra per-benchmark keys (rounds_to_best) are skipped
# by the field extraction.
extract() {
    awk -F'"' '/"ns_per_op"/ {
        name = $2
        line = $0
        ns = line;     sub(/.*"ns_per_op": /, "", ns);     sub(/[,}].*/, "", ns)
        aop = line;    sub(/.*"allocs_per_op": /, "", aop); sub(/[,}].*/, "", aop)
        print name, ns, aop
    }' "$1"
}

extract "$OLD" >/tmp/benchdiff_old.$$
extract "$NEW" >/tmp/benchdiff_new.$$
trap 'rm -f /tmp/benchdiff_old.$$ /tmp/benchdiff_new.$$' EXIT

fail=0
while read -r name new_ns new_aop; do
    old_line=$(awk -v n="$name" '$1 == n' /tmp/benchdiff_old.$$)
    if [ -z "$old_line" ]; then
        echo "NEW   $name: ${new_ns} ns/op (no baseline in $OLD)"
        continue
    fi
    old_ns=$(echo "$old_line" | awk '{print $2}')
    old_aop=$(echo "$old_line" | awk '{print $3}')
    delta=$(awk -v o="$old_ns" -v n="$new_ns" 'BEGIN{printf "%+.1f", (n - o) / o * 100}')
    status=ok
    if awk -v o="$old_ns" -v n="$new_ns" -v t="$TOLERANCE_PCT" \
        'BEGIN{exit !((n - o) / o * 100 > t)}'; then
        status="FAIL ns/op regressed beyond ${TOLERANCE_PCT}%"
        fail=1
    fi
    if awk -v o="$old_aop" -v n="$new_aop" 'BEGIN{exit !(n > o)}'; then
        status="FAIL allocs/op increased ${old_aop} -> ${new_aop}"
        fail=1
    fi
    echo "$status  $name: ${old_ns} -> ${new_ns} ns/op (${delta}%), allocs ${old_aop} -> ${new_aop}"
done </tmp/benchdiff_new.$$

while read -r name _ _; do
    if ! awk -v n="$name" '$1 == n {found=1} END{exit !found}' /tmp/benchdiff_new.$$; then
        echo "GONE  $name: present in $OLD only"
    fi
done </tmp/benchdiff_old.$$

if [ "$fail" -ne 0 ]; then
    echo "benchdiff: $NEW regressed against $OLD" >&2
fi
exit $fail
