#!/usr/bin/env bash
# check.sh — the repo's CI gate, runnable locally via `make check`.
#
#   1. tier-1: build, vet, full test suite, -race on the concurrency-bearing
#      packages (see ROADMAP.md)
#   2. fuzz seed corpora in regression mode (committed seeds only, no
#      fuzzing engine time)
#   3. log hygiene: no package under internal/ may import the global "log"
#      package — structured logging goes through log/slog via internal/obs
#   4. coverage report for the observability, framework, fleet, WAL,
#      serving, loadgen and profile layers, with hard floors on
#      internal/obs, internal/fleet, internal/wal, internal/serve,
#      internal/loadgen and internal/profile
set -euo pipefail
cd "$(dirname "$0")/.."

OBS_COVER_FLOOR=80
FLEET_COVER_FLOOR=80
WAL_COVER_FLOOR=80
SERVE_COVER_FLOOR=80
LOADGEN_COVER_FLOOR=80
PROFILE_COVER_FLOOR=80

echo "== tier-1: build =="
go build ./...

echo "== tier-1: vet =="
go vet ./...

echo "== tier-1: tests =="
go test ./...

echo "== tier-1: race detector =="
go test -race -timeout 1800s ./internal/bo ./internal/gp ./internal/mat ./internal/nn ./internal/serve ./internal/core ./internal/obs ./internal/fleet ./internal/wal ./internal/loadgen ./internal/profile

echo "== fuzz seed corpora (regression mode) =="
go test -run 'Fuzz' ./internal/core ./internal/serve ./internal/obs ./internal/wal ./internal/profile

echo "== log hygiene =="
# Structured logging only: internal/ packages must use log/slog (wired via
# internal/obs), never the global "log" package. cmd/ is exempt.
if grep -rn --include='*.go' -E '^\s*(stdlog\s+)?"log"$' internal/; then
    echo "FAIL: internal/ package imports the global \"log\" package; use log/slog" >&2
    exit 1
fi
echo "ok: no internal/ package imports the global \"log\" package"

echo "== coverage =="
fail=0
for pkg in internal/obs internal/core internal/serve internal/fleet internal/wal internal/loadgen internal/profile; do
    pct=$(go test -cover "./$pkg" | awk '{for (i=1;i<=NF;i++) if ($i ~ /%$/) {sub(/%/,"",$i); print $i; exit}}')
    echo "coverage ./$pkg: ${pct}%"
    floor=
    case "$pkg" in
        internal/obs) floor=$OBS_COVER_FLOOR ;;
        internal/fleet) floor=$FLEET_COVER_FLOOR ;;
        internal/wal) floor=$WAL_COVER_FLOOR ;;
        internal/serve) floor=$SERVE_COVER_FLOOR ;;
        internal/loadgen) floor=$LOADGEN_COVER_FLOOR ;;
        internal/profile) floor=$PROFILE_COVER_FLOOR ;;
    esac
    if [ -n "$floor" ]; then
        if awk -v p="$pct" -v f="$floor" 'BEGIN{exit !(p < f)}'; then
            echo "FAIL: ./$pkg coverage ${pct}% is below the ${floor}% floor" >&2
            fail=1
        fi
    fi
done
exit $fail
