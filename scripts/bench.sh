#!/usr/bin/env bash
# bench.sh — run the fleet serving-path micro-benchmarks, the warm-start
# BO benchmark, the fleet-under-fire macro benchmark and the warm-start
# builds-per-hour macro, writing the results as JSON to BENCH_PR10.json so
# performance regressions in registry lookup, model promotion, the
# observe path (with and without the WAL), the forecast hot path
# (uncached, cached, batch), the streaming-ingest path (recorder off —
# gated at 0 allocs/op — and with the flight recorder on, so the cost of
# causal tracing stays visible) and the warm-started build path are
# diffable across PRs (see scripts/benchdiff.sh).
#
# The "benchmarks" key holds ns/op, B/op, allocs/op per micro-benchmark
# (plus rounds_to_best for the warm-start benchmark's custom metric).
# Each benchmark runs BENCHCOUNT times (default 3) and the minimum-ns/op
# run is recorded: the WAL-touching benchmarks are fsync-bound, and on
# shared disks a single sample swings far beyond benchdiff's tolerance —
# the minimum is the least-interference estimate of the code's cost.
# The "fleet_under_fire" key holds the macro numbers from
# TestFleetUnderFireThroughput (accepted RPS per transport, p99 latency,
# stream-vs-observe speedup, drift-detection latency under fire); the
# "warm_start" key holds the cold-vs-warm full-build A/B from
# TestWarmStartBuildsPerHour (wall-clock seconds, best CV error,
# rounds-to-best and builds-per-hour for each arm). benchdiff.sh only
# gates on the micro-benchmarks; the macro objects are informational.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR10.json}
BENCHTIME=${BENCHTIME:-1s}
BENCHCOUNT=${BENCHCOUNT:-3}

raw=$(go test ./internal/fleet -run '^$' \
    -bench 'BenchmarkRegistryLookup|BenchmarkPromotion|BenchmarkObservePath|BenchmarkObserveWAL|BenchmarkForecastUncached|BenchmarkForecastCached|BenchmarkForecastBatch|BenchmarkStreamIngestRecord|BenchmarkStreamIngestWAL' \
    -benchtime "$BENCHTIME" -benchmem -count="$BENCHCOUNT")
echo "$raw"

raw_warm=$(go test ./internal/bo -run '^$' \
    -bench 'BenchmarkWarmStartRoundsToBest' \
    -benchtime "$BENCHTIME" -benchmem -count="$BENCHCOUNT")
echo "$raw_warm"

bench_json=$(printf '%s\n%s\n' "$raw" "$raw_warm" | awk '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        if (!(name in ns)) order[n++] = name
        # Keep the fastest of the -count runs, with its companion
        # metrics from the same line.
        if (!(name in ns) || $3 + 0 < ns[name] + 0) {
            ns[name] = $3
            delete bop[name]; delete aop[name]; delete rtb[name]
            for (i = 4; i <= NF; i++) {
                if ($(i) == "B/op")           bop[name] = $(i - 1)
                if ($(i) == "allocs/op")      aop[name] = $(i - 1)
                if ($(i) == "rounds-to-best") rtb[name] = $(i - 1)
            }
        }
    }
    END {
        printf "  \"benchmarks\": {\n"
        for (i = 0; i < n; i++) {
            name = order[i]
            extra = (name in rtb) ? sprintf(", \"rounds_to_best\": %s", rtb[name]) : ""
            printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s%s}%s\n",
                name, ns[name], bop[name] + 0, aop[name] + 0, extra, (i < n - 1 ? "," : "")
        }
        printf "  }"
    }
')

fire=$(mktemp)
warm=$(mktemp)
trap 'rm -f "$fire" "$warm"' EXIT
echo "== fleet under fire (loadgen vs stream ingest) =="
FLEET_FIRE_OUT="$fire" go test ./internal/serve -run '^TestFleetUnderFireThroughput$' -count=1 -v

echo "== warm-start builds per hour (cold vs warm full builds) =="
WARMSTART_OUT="$warm" go test ./internal/core -run '^TestWarmStartBuildsPerHour$' -count=1 -v

{
    echo "{"
    echo "${bench_json},"
    # The artifacts the tests wrote are already indented JSON objects;
    # re-indent their lines under the top-level keys.
    printf '  "fleet_under_fire": '
    sed '2,$s/^/  /' "$fire"
    echo "," # MarshalIndent output has no trailing newline
    printf '  "warm_start": '
    sed '2,$s/^/  /' "$warm"
    echo
    echo "}"
} >"$OUT"
echo "wrote $OUT"
