#!/usr/bin/env bash
# bench.sh — run the fleet serving-path micro-benchmarks plus the
# fleet-under-fire macro benchmark and write the results as JSON to
# BENCH_PR8.json so performance regressions in registry lookup, model
# promotion, the observe path (with and without the WAL), the forecast
# hot path (uncached, cached, batch) and the streaming-ingest path are
# diffable across PRs (see scripts/benchdiff.sh).
#
# The "benchmarks" key holds ns/op, B/op, allocs/op per micro-benchmark.
# The "fleet_under_fire" key holds the macro numbers from
# TestFleetUnderFireThroughput (accepted RPS per transport, p99 latency,
# stream-vs-observe speedup, drift-detection latency under fire);
# benchdiff.sh only gates on the micro-benchmarks, the macro object is
# informational.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR8.json}
BENCHTIME=${BENCHTIME:-1s}

raw=$(go test ./internal/fleet -run '^$' \
    -bench 'BenchmarkRegistryLookup|BenchmarkPromotion|BenchmarkObservePath|BenchmarkObserveWAL|BenchmarkForecastUncached|BenchmarkForecastCached|BenchmarkForecastBatch|BenchmarkStreamIngestRecord|BenchmarkStreamIngestWAL' \
    -benchtime "$BENCHTIME" -benchmem -count=1)
echo "$raw"

bench_json=$(echo "$raw" | awk '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns[name] = $3
        for (i = 4; i <= NF; i++) {
            if ($(i) == "B/op")      bop[name] = $(i - 1)
            if ($(i) == "allocs/op") aop[name] = $(i - 1)
        }
        order[n++] = name
    }
    END {
        printf "  \"benchmarks\": {\n"
        for (i = 0; i < n; i++) {
            name = order[i]
            printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n",
                name, ns[name], bop[name] + 0, aop[name] + 0, (i < n - 1 ? "," : "")
        }
        printf "  }"
    }
')

fire=$(mktemp)
trap 'rm -f "$fire"' EXIT
echo "== fleet under fire (loadgen vs stream ingest) =="
FLEET_FIRE_OUT="$fire" go test ./internal/serve -run '^TestFleetUnderFireThroughput$' -count=1 -v

{
    echo "{"
    echo "${bench_json},"
    # The artifact the test wrote is already an indented JSON object;
    # re-indent its lines under the top-level key.
    printf '  "fleet_under_fire": '
    sed '2,$s/^/  /' "$fire"
    echo # MarshalIndent output has no trailing newline
    echo "}"
} >"$OUT"
echo "wrote $OUT"
