#!/usr/bin/env bash
# bench.sh — run the fleet serving-path micro-benchmarks and write the
# results as JSON (ns/op, B/op, allocs/op per benchmark) to BENCH_PR7.json
# so performance regressions in registry lookup, model promotion, the
# observe path (with and without the WAL) and the forecast hot path
# (uncached, cached, batch) are diffable across PRs (see
# scripts/benchdiff.sh).
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=${1:-BENCH_PR7.json}
BENCHTIME=${BENCHTIME:-1s}

raw=$(go test ./internal/fleet -run '^$' \
    -bench 'BenchmarkRegistryLookup|BenchmarkPromotion|BenchmarkObservePath|BenchmarkObserveWAL|BenchmarkForecastUncached|BenchmarkForecastCached|BenchmarkForecastBatch' \
    -benchtime "$BENCHTIME" -benchmem -count=1)
echo "$raw"

echo "$raw" | awk '
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns[name] = $3
        for (i = 4; i <= NF; i++) {
            if ($(i) == "B/op")      bop[name] = $(i - 1)
            if ($(i) == "allocs/op") aop[name] = $(i - 1)
        }
        order[n++] = name
    }
    END {
        printf "{\n  \"benchmarks\": {\n"
        for (i = 0; i < n; i++) {
            name = order[i]
            printf "    \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}%s\n",
                name, ns[name], bop[name] + 0, aop[name] + 0, (i < n - 1 ? "," : "")
        }
        printf "  }\n}\n"
    }
' >"$OUT"
echo "wrote $OUT"
